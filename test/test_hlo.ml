(* Tests for the HLO core: the budget, the summaries P(R)/S(E), clone
   specifications, the cloning and inlining passes, and the multi-pass
   driver — including the staged devirtualization chain the paper
   highlights. *)

module U = Ucode.Types

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 0.0001))

let compile src = Minic.Compile.compile_string src

let compile2 (m1, s1) (m2, s2) =
  fst
    (Minic.Compile.compile_program
       [ Minic.Compile.source ~module_name:m1 s1;
         Minic.Compile.source ~module_name:m2 s2 ])

let validated_config = { Hlo.Config.default with Hlo.Config.validate = true }

let run_hlo ?(config = validated_config) ?(with_profile = true) p =
  let profile =
    if with_profile then (Interp.train p).Interp.profile else Ucode.Profile.empty
  in
  Hlo.Driver.run ~config ~profile p

(* Run HLO and assert the program still prints the same thing. *)
let hlo_preserves ?config ?with_profile p =
  let before = (Interp.run p).Interp.output in
  let res = run_hlo ?config ?with_profile p in
  let after = (Interp.run res.Hlo.Driver.program).Interp.output in
  check_string "HLO preserves output" before after;
  res

(* ------------------------------------------------------------------ *)
(* Budget.                                                             *)

let test_budget_math () =
  let config =
    { Hlo.Config.default with Hlo.Config.budget_percent = 50.0;
      staging = [ 0.5; 1.0 ] }
  in
  let b = Hlo.Budget.create config ~initial_cost:1000.0 in
  check_float "allowance" 500.0 b.Hlo.Budget.allowance;
  check_float "stage 0" 250.0 (Hlo.Budget.stage_allowance b ~pass:0);
  check_float "stage 1" 500.0 (Hlo.Budget.stage_allowance b ~pass:1);
  check_float "stage beyond" 500.0 (Hlo.Budget.stage_allowance b ~pass:7);
  check_bool "can afford within" true (Hlo.Budget.can_afford b ~pass:0 200.0);
  check_bool "cannot afford beyond stage" false
    (Hlo.Budget.can_afford b ~pass:0 300.0);
  Hlo.Budget.charge b 200.0;
  check_float "remaining stage 0" 50.0 (Hlo.Budget.remaining b ~pass:0);
  check_bool "not exhausted" false (Hlo.Budget.exhausted b);
  Hlo.Budget.charge b 300.0;
  check_bool "exhausted" true (Hlo.Budget.exhausted b);
  Hlo.Budget.recalibrate b ~measured_cost:1100.0;
  check_float "recalibrated spend" 100.0 b.Hlo.Budget.spent;
  Hlo.Budget.recalibrate b ~measured_cost:900.0;
  check_float "shrinkage clamps at zero" 0.0 b.Hlo.Budget.spent

let test_budget_empty_staging_rejected () =
  let config = { Hlo.Config.default with Hlo.Config.staging = [] } in
  Alcotest.check_raises "empty staging"
    (Invalid_argument "Budget.create: staging must be nonempty") (fun () ->
      ignore (Hlo.Budget.create config ~initial_cost:10.0))

(* Every way a staging schedule can be malformed is rejected at
   construction, with the error naming the offending value. *)
let test_budget_bad_staging_rejected () =
  let rejects what staging =
    let config = { Hlo.Config.default with Hlo.Config.staging = staging } in
    match Hlo.Budget.create config ~initial_cost:10.0 with
    | _ -> Alcotest.failf "%s: accepted" what
    | exception Invalid_argument msg ->
      check_bool (what ^ ": message is prefixed") true
        (String.length msg > String.length "Budget.create: "
        && String.sub msg 0 15 = "Budget.create: ")
  in
  rejects "decreasing" [ 0.5; 0.25; 1.0 ];
  rejects "not ending at 1.0" [ 0.25; 0.5 ];
  rejects "above 1.0" [ 0.5; 1.5; 1.0 ];
  rejects "negative" [ -0.25; 1.0 ];
  rejects "nan" [ Float.nan; 1.0 ];
  (* and the same schedules fail at the flag parser *)
  List.iter
    (fun s ->
      match Hlo.Config.staging_of_string s with
      | Ok _ -> Alcotest.failf "staging_of_string accepted %S" s
      | Error _ -> ())
    [ "0.5,0.25,1"; "0.25,0.5"; "nope"; "" ];
  match Hlo.Config.staging_of_string "0.25, 0.5 ,1" with
  | Ok [ 0.25; 0.5; 1.0 ] -> ()
  | _ -> Alcotest.fail "staging_of_string rejected a good schedule"

(* ------------------------------------------------------------------ *)
(* Summaries.                                                          *)

let test_param_usage_weights () =
  let src = {|
    func f(cond, callee, unused, addr) {
      if (cond) { return callee(addr[0]); }
      return 0;
    }
    func main() { return 0; }
  |} in
  let p = compile src in
  let f = U.find_routine_exn p "f" in
  let usage =
    Hlo.Summaries.param_usage ~config:Hlo.Config.default
      ~profile:Ucode.Profile.empty f
  in
  let w = usage.Hlo.Summaries.pu_weights in
  check_bool "cond has weight (branch)" true (w.(0) > 0.0);
  check_bool "callee weight highest (indirect)" true
    (w.(1) > w.(0) && w.(1) > w.(3));
  check_float "unused param has no weight" 0.0 w.(2);
  check_bool "addr has memory weight" true (w.(3) > 0.0);
  check_bool "indirect flag" true usage.Hlo.Summaries.pu_indirect.(1);
  check_bool "no indirect flag on cond" false usage.Hlo.Summaries.pu_indirect.(0)

let test_edge_contexts () =
  let src = {|
    func g(a, b) { return a + b; }
    func main(x) {
      g(7, x);
      g(x, 7);
      return 0;
    }
  |} in
  let p = compile src in
  let main = U.find_routine_exn p "main" in
  let contexts = Hlo.Summaries.edge_contexts main in
  let values =
    U.Int_map.bindings contexts |> List.map snd
  in
  (match values with
  | [ [ Hlo.Summaries.Cconst 7L; Hlo.Summaries.Cunknown ];
      [ Hlo.Summaries.Cunknown; Hlo.Summaries.Cconst 7L ] ] -> ()
  | _ -> Alcotest.fail "unexpected calling contexts")

let test_blocks_in_cycles () =
  let src = {|
    func main() {
      var s = 0;
      for (var i = 0; i < 3; i = i + 1) { s = s + i; }
      print_int(s);
      return 0;
    }
  |} in
  let p = compile src in
  let main = U.find_routine_exn p "main" in
  let cyc = Hlo.Summaries.blocks_in_cycles main in
  check_bool "some blocks cycle" true (not (U.Int_set.is_empty cyc));
  check_bool "entry does not cycle" false
    (U.Int_set.mem (U.entry_block main).U.b_id cyc)

(* ------------------------------------------------------------------ *)
(* Clone specs.                                                        *)

let spec_fixture () =
  let src = {|
    func poly(mode, x) {
      if (mode == 0) { return x + 1; }
      return x * 2;
    }
    func main() {
      print_int(poly(0, 5));
      print_int(poly(0, 6));
      print_int(poly(1, 7));
      return 0;
    }
  |} in
  compile src

let test_intersect_and_match () =
  let p = spec_fixture () in
  let poly = U.find_routine_exn p "poly" in
  let usage =
    Hlo.Summaries.param_usage ~config:Hlo.Config.default
      ~profile:Ucode.Profile.empty poly
  in
  let ctx = [ Hlo.Summaries.Cconst 0L; Hlo.Summaries.Cunknown ] in
  (match Hlo.Clone_spec.intersect ~callee:poly ~context:ctx ~usage with
  | Some spec ->
    check_string "spec key" "poly(#0=0)" (Hlo.Clone_spec.key spec);
    check_bool "same context matches" true (Hlo.Clone_spec.matches ctx spec);
    check_bool "richer context matches" true
      (Hlo.Clone_spec.matches
         [ Hlo.Summaries.Cconst 0L; Hlo.Summaries.Cconst 9L ]
         spec);
    check_bool "different const does not" false
      (Hlo.Clone_spec.matches
         [ Hlo.Summaries.Cconst 1L; Hlo.Summaries.Cunknown ]
         spec);
    check_bool "unknown does not" false
      (Hlo.Clone_spec.matches
         [ Hlo.Summaries.Cunknown; Hlo.Summaries.Cunknown ]
         spec)
  | None -> Alcotest.fail "expected a spec");
  (* No interesting info -> no spec. *)
  check_bool "all unknown yields none" true
    (Hlo.Clone_spec.intersect ~callee:poly
       ~context:[ Hlo.Summaries.Cunknown; Hlo.Summaries.Cunknown ]
       ~usage
    = None);
  (* Arity-mismatched context: illegal site, no spec. *)
  check_bool "arity mismatch yields none" true
    (Hlo.Clone_spec.intersect ~callee:poly ~context:[ Hlo.Summaries.Cconst 0L ]
       ~usage
    = None)

let test_make_clone_shape () =
  let p = spec_fixture () in
  let poly = U.find_routine_exn p "poly" in
  let usage =
    Hlo.Summaries.param_usage ~config:Hlo.Config.default
      ~profile:Ucode.Profile.empty poly
  in
  let spec =
    Option.get
      (Hlo.Clone_spec.intersect ~callee:poly
         ~context:[ Hlo.Summaries.Cconst 0L; Hlo.Summaries.Cunknown ]
         ~usage)
  in
  let next = ref 1000 in
  let fresh () = let s = !next in incr next; s in
  let clone, site_map =
    Hlo.Clone_spec.make_clone ~callee:poly ~clone_name:"poly_c" ~fresh_site:fresh
      spec
  in
  check_int "one param dropped" 1 (List.length clone.U.r_params);
  check_bool "module-local" true (clone.U.r_linkage = U.Module_local);
  check_bool "records origin" true (clone.U.r_origin = U.Clone_of "poly");
  check_int "no call sites in poly" 0 (List.length site_map);
  (* The entry block starts with the constant initializer. *)
  (match (U.entry_block clone).U.b_instrs with
  | U.Const (r, 0L) :: _ ->
    check_bool "init targets the dropped formal" true
      (not (List.mem r clone.U.r_params))
  | _ -> Alcotest.fail "missing constant initializer");
  (* Retargeting a call drops the bound actual. *)
  let call =
    { U.c_dst = Some 9; c_callee = U.Direct "poly"; c_args = [ 4; 5 ];
      c_site = 3 }
  in
  let call' = Hlo.Clone_spec.retarget_call spec ~clone_name:"poly_c" call in
  check_bool "retargeted" true (call'.U.c_callee = U.Direct "poly_c");
  Alcotest.(check (list int)) "args filtered" [ 5 ] call'.U.c_args

(* ------------------------------------------------------------------ *)
(* Cloner.                                                             *)

let test_cloner_creates_groups () =
  let p = spec_fixture () in
  let res = hlo_preserves ~config:{ validated_config with
    Hlo.Config.enable_inlining = false } p in
  let report = res.Hlo.Driver.report in
  check_bool "clones created" true (report.Hlo.Report.clones_created >= 1);
  (* Both poly(0, _) sites share one clone: replacements > clones. *)
  check_bool "group shared" true
    (report.Hlo.Report.clone_replacements > report.Hlo.Report.clones_created
    || report.Hlo.Report.clone_replacements >= 2)

let test_cloner_respects_noclone () =
  let src = {|
    noclone func poly(mode, x) {
      if (mode == 0) { return x + 1; }
      return x * 2;
    }
    func main() { print_int(poly(0, 5)); return 0; }
  |} in
  let res =
    hlo_preserves
      ~config:{ validated_config with Hlo.Config.enable_inlining = false }
      (compile src)
  in
  check_int "no clones" 0 res.Hlo.Driver.report.Hlo.Report.clones_created

let test_cloner_respects_varargs () =
  let src = {|
    varargs func v(mode) { return mode; }
    func main() { print_int(v(3)); return 0; }
  |} in
  let res =
    hlo_preserves
      ~config:{ validated_config with Hlo.Config.enable_inlining = false }
      (compile src)
  in
  check_int "no clones of varargs" 0
    res.Hlo.Driver.report.Hlo.Report.clones_created

let test_clone_database_reuse () =
  (* Two passes discover the same spec; the clone must be reused, not
     duplicated: clones_created stays 1 even though replacements grow. *)
  let src = {|
    func leaf(mode, x) {
      if (mode == 0) { return x + 1; }
      return x * 2;
    }
    func wrap(x) { return leaf(0, x); }
    func main() {
      var s = 0;
      for (var i = 0; i < 50; i = i + 1) {
        s = s + leaf(0, i) + wrap(i);
      }
      print_int(s);
      return 0;
    }
  |} in
  let res = hlo_preserves (compile src) in
  let report = res.Hlo.Driver.report in
  (* All leaf(0,_) spec instances share one clone name. *)
  let clones =
    List.filter
      (fun (r : U.routine) ->
        match r.U.r_origin with U.Clone_of "leaf" -> true | _ -> false)
      res.Hlo.Driver.program.U.p_routines
  in
  check_bool "at most one live leaf clone" true (List.length clones <= 1);
  check_bool "some cloning happened" true (report.Hlo.Report.clone_replacements >= 1)

(* ------------------------------------------------------------------ *)
(* Inliner.                                                            *)

let test_inliner_flattens () =
  let src = {|
    func add1(x) { return x + 1; }
    func main() {
      var s = 0;
      for (var i = 0; i < 100; i = i + 1) { s = add1(s); }
      print_int(s);
      return 0;
    }
  |} in
  let p = compile src in
  let res = hlo_preserves p in
  (* The hot call disappears from main. *)
  let main = U.find_routine_exn res.Hlo.Driver.program "main" in
  let remaining =
    List.length
      (List.filter
         (fun (_, c) -> c.U.c_callee = U.Direct "add1")
         (U.calls_of_routine main))
  in
  check_int "hot call inlined" 0 remaining;
  check_bool "report counted it" true (res.Hlo.Driver.report.Hlo.Report.inlines >= 1)

let screen_fixture attr =
  Printf.sprintf
    {| %s func callee(x) { return x + 1; }
       func main() {
         var s = 0;
         for (var i = 0; i < 100; i = i + 1) { s = callee(s); }
         print_int(s);
         return 0;
       } |}
    attr

let test_inliner_legality_screen () =
  List.iter
    (fun attr ->
      let res = hlo_preserves (compile (screen_fixture attr)) in
      let main = U.find_routine_exn res.Hlo.Driver.program "main" in
      let still_there =
        List.exists
          (fun (_, c) -> c.U.c_callee = U.Direct "callee")
          (U.calls_of_routine main)
      in
      check_bool (attr ^ " blocks inlining") true still_there)
    [ "noinline"; "varargs"; "alloca"; "fprelaxed" ]

let test_inliner_arity_mismatch_blocked () =
  let src = {|
    func two(a, b) { return a + b; }
    func main() {
      var s = 0;
      for (var i = 0; i < 50; i = i + 1) { s = s + two(i); }
      print_int(s);
      return 0;
    }
  |} in
  let res = hlo_preserves (compile src) in
  check_int "no inlines of mismatched site" 0
    res.Hlo.Driver.report.Hlo.Report.inlines

let test_inliner_cross_module_scope () =
  let m1 = ("lib1", "func add1(x) { return x + 1; }") in
  let m2 =
    ( "app",
      {| func main() {
           var s = 0;
           for (var i = 0; i < 100; i = i + 1) { s = add1(s); }
           print_int(s);
           return 0;
         } |} )
  in
  let narrow =
    Hlo.Config.with_scope validated_config Hlo.Config.P
  in
  let res1 = hlo_preserves ~config:narrow (compile2 m1 m2) in
  check_int "module scope blocks cross-module inline" 0
    res1.Hlo.Driver.report.Hlo.Report.inlines;
  let wide = Hlo.Config.with_scope validated_config Hlo.Config.CP in
  let res2 = hlo_preserves ~config:wide (compile2 m1 m2) in
  check_bool "cross-module scope inlines" true
    (res2.Hlo.Driver.report.Hlo.Report.inlines >= 1)

let test_inliner_self_recursion_unrolls () =
  let src = {|
    func fact(n) {
      if (n <= 1) { return 1; }
      return n * fact(n - 1);
    }
    func main() { print_int(fact(10)); return 0; }
  |} in
  ignore (hlo_preserves (compile src))

let test_inliner_profile_scaling () =
  (* After inlining a hot call, the callee's residual entry count drops
     by the site's share. *)
  let src = {|
    func leaf(x) { return x + 1; }
    func main() {
      var s = 0;
      for (var i = 0; i < 60; i = i + 1) { s = leaf(s); }
      for (var i = 0; i < 40; i = i + 1) { s = leaf(s); }
      print_int(s);
      return 0;
    }
  |} in
  let p = compile src in
  let profile = (Interp.train p).Interp.profile in
  let leaf = U.find_routine_exn p "leaf" in
  check_float "before" 100.0 (Ucode.Profile.entry_count profile leaf);
  let config =
    { validated_config with
      Hlo.Config.max_operations = Some 1; enable_cloning = false }
  in
  let res = Hlo.Driver.run ~config ~profile p in
  (match U.find_routine res.Hlo.Driver.program "leaf" with
  | Some leaf' ->
    let after = Ucode.Profile.entry_count res.Hlo.Driver.profile leaf' in
    check_bool "residual profile dropped" true (after < 100.0)
  | None -> ())

(* ------------------------------------------------------------------ *)
(* Driver.                                                             *)

let test_driver_zero_budget () =
  let src = screen_fixture "" in
  let config = { validated_config with Hlo.Config.budget_percent = 0.0 } in
  let res = hlo_preserves ~config (compile src) in
  let report = res.Hlo.Driver.report in
  (* Zero growth allowed: only free operations (none here). *)
  check_int "no inlines" 0 report.Hlo.Report.inlines

let test_driver_max_operations () =
  let src = {|
    func a1(x) { return x + 1; }
    func a2(x) { return x + 2; }
    func a3(x) { return x + 3; }
    func main() {
      var s = 0;
      for (var i = 0; i < 50; i = i + 1) {
        s = a1(s) + a2(s) + a3(s);
      }
      print_int(s);
      return 0;
    }
  |} in
  let config = { validated_config with Hlo.Config.max_operations = Some 2 } in
  let res = hlo_preserves ~config (compile src) in
  check_bool "capped" true
    (Hlo.Report.total_operations res.Hlo.Driver.report <= 2)

let test_driver_deletes_fully_cloned_static () =
  let src = {|
    static func helper(mode, x) {
      if (mode == 0) { return x + 1; }
      return x * 2;
    }
    func main() {
      var s = 0;
      for (var i = 0; i < 80; i = i + 1) { s = helper(0, s); }
      print_int(s);
      return 0;
    }
  |} in
  let res = hlo_preserves (compile src) in
  check_bool "the static helper died" true
    (U.find_routine res.Hlo.Driver.program "main$helper" = None);
  check_bool "deletions counted" true
    (res.Hlo.Driver.report.Hlo.Report.deletions >= 1)

let test_driver_staged_devirtualization () =
  (* The §3.1 chain: clone at a site passing a function pointer;
     constant propagation turns the indirect call direct; a later pass
     inlines it.  End state: main's hot path has no indirect calls. *)
  let src = {|
    func work(x) { return x * 3 + 1; }
    func apply_n(f, n, x) {
      var i = 0;
      while (i < n) { x = f(x); i = i + 1; }
      return x;
    }
    func main() {
      print_int(apply_n(&work, 200, 1));
      return 0;
    }
  |} in
  let config =
    { validated_config with Hlo.Config.budget_percent = 300.0; pass_limit = 6;
      staging = [ 0.4; 0.6; 0.8; 1.0 ] }
  in
  let res = hlo_preserves ~config (compile src) in
  let p' = res.Hlo.Driver.program in
  (* The hot loop now reaches work directly (or fully inlined): no
     routine *reachable from main* both loops and calls indirectly.
     The original apply_n survives as an exported-but-uncalled root
     and legitimately keeps its indirect call. *)
  let rec reachable seen name =
    if U.String_set.mem name seen then seen
    else
      match U.find_routine p' name with
      | None -> seen
      | Some r ->
        let seen = U.String_set.add name seen in
        List.fold_left
          (fun seen (_, c) ->
            match c.U.c_callee with
            | U.Direct n -> reachable seen n
            | U.Indirect _ -> seen)
          seen (U.calls_of_routine r)
  in
  let live = reachable U.String_set.empty p'.U.p_main in
  let indirect_in_loop =
    List.exists
      (fun (r : U.routine) ->
        U.String_set.mem r.U.r_name live
        &&
        let cyc = Hlo.Summaries.blocks_in_cycles r in
        List.exists
          (fun (b : U.block) ->
            U.Int_set.mem b.U.b_id cyc
            && List.exists
                 (function
                   | U.Call { c_callee = U.Indirect _; _ } -> true
                   | _ -> false)
                 b.U.b_instrs)
          r.U.r_blocks)
      p'.U.p_routines
  in
  check_bool "hot indirect call devirtualized" false indirect_in_loop

let test_driver_all_workloads_preserved () =
  List.iter
    (fun b ->
      let p = Workloads.Suite.compile b ~input:Workloads.Suite.Train in
      ignore
        (hlo_preserves ~config:validated_config p);
      ignore
        (hlo_preserves
           ~config:(Hlo.Config.with_scope validated_config Hlo.Config.Base)
           ~with_profile:false p))
    Workloads.Suite.all

let test_inliner_cascaded_chain () =
  (* A <- B <- C: the schedule runs bottom-up, so A receives B's body
     with C already inside it.  End state: the hot path of main has no
     calls left at all (other than the print). *)
  let src = {|
    func c_leaf(x) { return x * 2 + 1; }
    func b_mid(x) { return c_leaf(x) + 3; }
    func a_top(x) { return b_mid(x) * 5; }
    func main() {
      var s = 0;
      for (var i = 0; i < 300; i = i + 1) { s = s + a_top(i); }
      print_int(s & 1048575);
      return 0;
    }
  |} in
  let config =
    { validated_config with Hlo.Config.budget_percent = 400.0 }
  in
  let res = hlo_preserves ~config (compile src) in
  let main = U.find_routine_exn res.Hlo.Driver.program "main" in
  let user_calls =
    List.filter
      (fun (_, c) ->
        match c.U.c_callee with
        | U.Direct n -> not (U.is_builtin n)
        | U.Indirect _ -> true)
      (U.calls_of_routine main)
  in
  check_int "hot chain fully flattened" 0 (List.length user_calls)

let test_cloner_indirect_bonus_ranks_first () =
  (* Two equally-hot cloning opportunities, equal in every respect
     except one binds a routine handle that feeds an indirect call:
     with a budget for exactly one clone, the devirtualizing one must
     win. *)
  let src = {|
    func work(x) { return x * 3 + 1; }
    func plain(mode, x) {
      var r = x;
      if (mode == 1) { r = r * 17 + 5; }
      if (mode == 2) { r = r ^ 255; }
      return r + mode;
    }
    func applier(f, x) {
      var r = x;
      if (f) { r = f(x); }
      if (r > 100) { r = r - 100; }
      return r;
    }
    func main() {
      var s = 0;
      for (var i = 0; i < 500; i = i + 1) {
        s = s + plain(1, i);
        s = s + applier(&work, i);
      }
      print_int(s & 1048575);
      return 0;
    }
  |} in
  let config =
    { validated_config with
      Hlo.Config.enable_inlining = false; max_operations = Some 1 }
  in
  let res = hlo_preserves ~config (compile src) in
  (match Hlo.Report.operations_in_order res.Hlo.Driver.report with
  | [ Hlo.Report.Op_clone_replace { clone; _ } ] ->
    check_bool "devirtualizing clone chosen first" true
      (String.length clone >= 7 && String.sub clone 0 7 = "applier")
  | _ -> Alcotest.fail "expected exactly one clone replacement")

(* ------------------------------------------------------------------ *)
(* Outliner (the paper's §5 extension).                                *)

let outline_fixture = {|
  global log_[64];
  global nlog = 0;
  func process(x) {
    var v = x * 3 + 1;
    if (v % 97 == 0) {
      var code = v * 7;
      var a = code & 255;
      var b = (code >> 8) & 255;
      var c = a * b + 13;
      log_[nlog & 63] = c;
      nlog = nlog + 1;
      v = c ^ 5;
    }
    return v & 65535;
  }
  func main() {
    var s = 0;
    for (var i = 0; i < 3000; i = i + 1) { s = (s + process(i)) % 999983; }
    print_int(s);
    print_int(nlog);
    return 0;
  }
|}

let test_outliner_extracts_cold_region () =
  let p = compile outline_fixture in
  let config =
    { validated_config with
      Hlo.Config.enable_outlining = true; enable_inlining = false;
      enable_cloning = false }
  in
  let res = hlo_preserves ~config p in
  check_bool "outlined something" true
    (res.Hlo.Driver.report.Hlo.Report.outlined >= 1);
  (* The quadratic cost must shrink: (n-k)^2 + k^2 < n^2. *)
  check_bool "cost shrank" true
    (res.Hlo.Driver.report.Hlo.Report.cost_after
    < res.Hlo.Driver.report.Hlo.Report.cost_before);
  (* The cold routine exists, is module-local and noinline. *)
  let cold =
    List.find_opt
      (fun (r : U.routine) ->
        String.length r.U.r_name > 6
        && String.sub r.U.r_name 0 7 = "process"
        && r.U.r_name <> "process")
      res.Hlo.Driver.program.U.p_routines
  in
  match cold with
  | Some r ->
    check_bool "module-local" true (r.U.r_linkage = U.Module_local);
    check_bool "noinline" true r.U.r_attrs.U.a_no_inline
  | None -> Alcotest.fail "no outlined routine found"

let test_outliner_region_shape () =
  (* find_regions on the fixture: the cold region's interface is small
     and its blocks exclude the routine entry. *)
  let p = compile outline_fixture in
  let p = Opt.Pipeline.optimize_program p in
  let profile = (Interp.train p).Interp.profile in
  let process = U.find_routine_exn p "process" in
  (match Hlo.Outliner.find_regions ~profile process with
  | rg :: _ ->
    check_bool "entry not in region" false
      (U.Int_set.mem (U.entry_block process).U.b_id rg.Hlo.Outliner.rg_blocks);
    check_bool "region is cold code, several instrs" true
      (rg.Hlo.Outliner.rg_size >= 6);
    check_bool "few inputs" true
      (List.length rg.Hlo.Outliner.rg_inputs <= 6);
    check_bool "exit outside region" false
      (U.Int_set.mem rg.Hlo.Outliner.rg_exit rg.Hlo.Outliner.rg_blocks)
  | [] -> Alcotest.fail "expected a region in process");
  (* The hot routine (main) has no cold region. *)
  let main = U.find_routine_exn p "main" in
  check_int "main has no regions" 0
    (List.length (Hlo.Outliner.find_regions ~profile main))

let test_outliner_needs_profile () =
  let p = compile outline_fixture in
  let config =
    { validated_config with
      Hlo.Config.enable_outlining = true; enable_inlining = false;
      enable_cloning = false }
  in
  let res = Hlo.Driver.run ~config ~profile:Ucode.Profile.empty p in
  check_int "no outlining without profile" 0
    res.Hlo.Driver.report.Hlo.Report.outlined

let test_outliner_skips_hot_regions () =
  (* Everything here is hot; nothing should be outlined. *)
  let src = {|
    func main() {
      var s = 0;
      for (var i = 0; i < 1000; i = i + 1) {
        if (i & 1) { s = s + i; } else { s = s - i; }
      }
      print_int(s);
      return 0;
    }
  |} in
  let config = { validated_config with Hlo.Config.enable_outlining = true } in
  let res = hlo_preserves ~config (compile src) in
  check_int "nothing outlined" 0 res.Hlo.Driver.report.Hlo.Report.outlined

let test_outliner_on_workloads () =
  (* Outlining must preserve every workload's behavior end to end. *)
  List.iter
    (fun name ->
      let b = Workloads.Suite.find name in
      let p = Workloads.Suite.compile b ~input:Workloads.Suite.Train in
      let config = { validated_config with Hlo.Config.enable_outlining = true } in
      ignore (hlo_preserves ~config p))
    [ "124.m88ksim"; "147.vortex"; "026.compress" ]

let test_outliner_never_whole_body () =
  (* An absurd cold cut classifies every block as cold, but a region
     can never swallow a whole routine: the entry block is structurally
     excluded and returns may not move into the extracted routine, so a
     hot stub always stays behind. *)
  let p = compile outline_fixture in
  let p = Opt.Pipeline.optimize_program p in
  let profile = (Interp.train p).Interp.profile in
  let greedy =
    { Hlo.Outliner.default_config with
      Hlo.Outliner.cold_fraction = 1000.0; min_instructions = 1 }
  in
  List.iter
    (fun (r : U.routine) ->
      List.iter
        (fun (rg : Hlo.Outliner.region) ->
          check_bool "entry block excluded" false
            (U.Int_set.mem (U.entry_block r).U.b_id rg.Hlo.Outliner.rg_blocks);
          check_bool "region strictly smaller than routine" true
            (U.Int_set.cardinal rg.Hlo.Outliner.rg_blocks
            < List.length r.U.r_blocks);
          List.iter
            (fun (b : U.block) ->
              if U.Int_set.mem b.U.b_id rg.Hlo.Outliner.rg_blocks then
                match b.U.b_term with
                | U.Return _ ->
                  Alcotest.failf "return inside region of %s" r.U.r_name
                | _ -> ())
            r.U.r_blocks)
        (Hlo.Outliner.find_regions ~config:greedy ~profile r))
    p.U.p_routines

let test_outliner_zero_count_routine () =
  (* [rare] is statically reachable (so the dead-call cleanup keeps it)
     but the guard never fires at runtime: every block count is zero.
     Both coldness bases then have a zero reference, and nothing is
     "colder than" zero — no regions, under either basis. *)
  let src = {|
    global gs;
    func rare(x) {
      var v = x * 7;
      if (v % 3 == 0) {
        gs = gs + v * 5;
        gs = gs - (v & 255);
        gs = gs + 1;
        gs = gs * 2;
        gs = gs + x;
        gs = gs - 4;
      } else { }
      return v + gs;
    }
    func main() {
      var s = 0;
      for (var i = 0; i < 100; i = i + 1) {
        if (i > 100000) { s = s + rare(i); } else { s = s + i; }
      }
      print_int(s);
      return 0;
    }
  |} in
  let p = Opt.Pipeline.optimize_program (compile src) in
  let profile = (Interp.train p).Interp.profile in
  check_bool "profile has data (main ran)" false
    (Ucode.Profile.is_empty profile);
  let rare = U.find_routine_exn p "rare" in
  let loose =
    { Hlo.Outliner.default_config with
      Hlo.Outliner.cold_fraction = 1000.0; min_instructions = 1 }
  in
  List.iter
    (fun basis ->
      check_int "no regions in a never-run routine" 0
        (List.length
           (Hlo.Outliner.find_regions ~config:loose ~basis ~profile rare)))
    [ `Entry; `Hottest ]

let test_outliner_max_inputs_overflow () =
  (* The cold region reads many registers defined above it; each live-in
     becomes a parameter of the outlined routine, so a tight max_inputs
     must reject the region while a looser one accepts it. *)
  let src = {|
    global gs;
    func wide(x) {
      var a = x * 3 + 1;
      var b = x * 5 + 2;
      var c = x * 7 + 3;
      var d = x * 11 + 4;
      var v = x + 9;
      if (x % 97 == 0) {
        gs = gs + a * b;
        gs = gs + c * d;
        gs = gs + a * c;
        gs = gs + b * d;
        v = (a + b + c + d + gs) & 65535;
      } else { }
      return (v + a - b + c - d) & 65535;
    }
    func main() {
      var s = 0;
      for (var i = 0; i < 2000; i = i + 1) { s = (s + wide(i)) % 999983; }
      print_int(s);
      print_int(gs);
      return 0;
    }
  |} in
  let p = Opt.Pipeline.optimize_program (compile src) in
  let profile = (Interp.train p).Interp.profile in
  let wide = U.find_routine_exn p "wide" in
  let with_inputs n =
    Hlo.Outliner.find_regions
      ~config:
        { Hlo.Outliner.default_config with
          Hlo.Outliner.min_instructions = 1; max_inputs = n }
      ~profile wide
  in
  let generous = with_inputs 16 in
  check_bool "region found with a generous cap" true (generous <> []);
  let inputs =
    match generous with
    | rg :: _ -> List.length rg.Hlo.Outliner.rg_inputs
    | [] -> 0
  in
  check_bool "region genuinely needs several live-ins" true (inputs >= 3);
  check_int "tight max_inputs rejects the region" 0
    (List.length (with_inputs (inputs - 1)))

let clone_outline_fixture = {|
  global log_[64];
  global nlog = 0;
  func work(mode, x) {
    var v = x * 3;
    if (mode == 0) { v = v + 1; } else { v = v * 2 + 1; }
    if (v % 97 == 0) {
      var code = v * 7;
      var a = code & 255;
      var b = (code >> 8) & 255;
      var c = a * b + 13;
      log_[nlog & 63] = c;
      nlog = nlog + 1;
      v = c ^ 5;
    }
    return v & 65535;
  }
  func main() {
    var s = 0;
    for (var i = 0; i < 2000; i = i + 1) { s = (s + work(0, i)) % 999983; }
    for (var i = 0; i < 2000; i = i + 1) { s = (s + work(1, i)) % 999983; }
    print_int(s);
    print_int(nlog);
    return 0;
  }
|}

let test_outliner_inside_clones () =
  (* Cloning first (constant [mode] arguments), then outlining: the
     clones inherit a split of the original's profile, so their cold
     branches are still recognizably cold and get extracted from the
     *clone* bodies.  Checks the outliner composes with cloning rather
     than only working on source routines. *)
  let config =
    { validated_config with
      Hlo.Config.enable_cloning = true; enable_inlining = false;
      enable_outlining = false; outline_min_instructions = 4;
      (* Generous budget: both mode-specialized clones of [work] must be
         affordable before the outline stage can see them. *)
      budget_percent = 500.0;
      stage_order =
        [ Policy.Clone; Policy.Outline; Policy.Prune; Policy.Clean ] }
  in
  let res = hlo_preserves ~config (compile clone_outline_fixture) in
  let routines = res.Hlo.Driver.program.U.p_routines in
  let has sub (r : U.routine) =
    let name = r.U.r_name and n = String.length sub in
    let rec go i =
      i + n <= String.length name && (String.sub name i n = sub || go (i + 1))
    in
    go 0
  in
  check_bool "work was cloned" true
    (List.exists (fun r -> has "__clone" r) routines);
  let from_clone =
    List.filter (fun r -> has "__clone" r && has "__cold" r) routines
  in
  check_bool "a cold region was outlined out of a clone" true
    (from_clone <> []);
  List.iter
    (fun (r : U.routine) ->
      check_bool "clone residue is module-local" true
        (r.U.r_linkage = U.Module_local))
    from_clone

let test_report_totals () =
  let r = Hlo.Report.create () in
  check_int "empty" 0 (Hlo.Report.total_operations r);
  r.Hlo.Report.inlines <- 3;
  r.Hlo.Report.clone_replacements <- 4;
  check_int "sum" 7 (Hlo.Report.total_operations r)

let test_report_pp_zero_cost () =
  (* With no cost baseline the growth percentage is meaningless; pp must
     print "n/a" rather than a bogus percent (or a division by zero). *)
  let r = Hlo.Report.create () in
  let s = Fmt.str "%a" Hlo.Report.pp r in
  Alcotest.(check bool) "n/a when cost_before = 0" true
    (String.length s >= 5 && String.sub s (String.length s - 5) 5 = "(n/a)");
  r.Hlo.Report.cost_before <- 200.0;
  r.Hlo.Report.cost_after <- 150.0;
  let s = Fmt.str "%a" Hlo.Report.pp r in
  Alcotest.(check bool) "percent when cost_before > 0" true
    (String.length s >= 6 && String.sub s (String.length s - 6) 6 = "(-25%)")

let () =
  Alcotest.run "hlo"
    [ ( "budget",
        [ Alcotest.test_case "math" `Quick test_budget_math;
          Alcotest.test_case "empty staging" `Quick
            test_budget_empty_staging_rejected;
          Alcotest.test_case "bad staging" `Quick
            test_budget_bad_staging_rejected ] );
      ( "summaries",
        [ Alcotest.test_case "param usage" `Quick test_param_usage_weights;
          Alcotest.test_case "edge contexts" `Quick test_edge_contexts;
          Alcotest.test_case "cycles" `Quick test_blocks_in_cycles ] );
      ( "clone-spec",
        [ Alcotest.test_case "intersect/match" `Quick test_intersect_and_match;
          Alcotest.test_case "make clone" `Quick test_make_clone_shape ] );
      ( "cloner",
        [ Alcotest.test_case "creates groups" `Quick test_cloner_creates_groups;
          Alcotest.test_case "noclone" `Quick test_cloner_respects_noclone;
          Alcotest.test_case "varargs" `Quick test_cloner_respects_varargs;
          Alcotest.test_case "database reuse" `Quick test_clone_database_reuse ] );
      ( "inliner",
        [ Alcotest.test_case "flattens hot call" `Quick test_inliner_flattens;
          Alcotest.test_case "legality screen" `Quick test_inliner_legality_screen;
          Alcotest.test_case "arity mismatch" `Quick
            test_inliner_arity_mismatch_blocked;
          Alcotest.test_case "cross-module scope" `Quick
            test_inliner_cross_module_scope;
          Alcotest.test_case "self recursion" `Quick
            test_inliner_self_recursion_unrolls;
          Alcotest.test_case "profile scaling" `Quick
            test_inliner_profile_scaling;
          Alcotest.test_case "cascaded chain" `Quick test_inliner_cascaded_chain;
          Alcotest.test_case "indirect bonus" `Quick
            test_cloner_indirect_bonus_ranks_first ] );
      ( "outliner",
        [ Alcotest.test_case "extracts cold region" `Quick
            test_outliner_extracts_cold_region;
          Alcotest.test_case "region shape" `Quick test_outliner_region_shape;
          Alcotest.test_case "needs profile" `Quick test_outliner_needs_profile;
          Alcotest.test_case "skips hot regions" `Quick
            test_outliner_skips_hot_regions;
          Alcotest.test_case "preserves workloads" `Slow
            test_outliner_on_workloads;
          Alcotest.test_case "never whole body" `Quick
            test_outliner_never_whole_body;
          Alcotest.test_case "zero-count routine" `Quick
            test_outliner_zero_count_routine;
          Alcotest.test_case "max_inputs overflow" `Quick
            test_outliner_max_inputs_overflow;
          Alcotest.test_case "outlines inside clones" `Quick
            test_outliner_inside_clones ] );
      ( "driver",
        [ Alcotest.test_case "zero budget" `Quick test_driver_zero_budget;
          Alcotest.test_case "max operations" `Quick test_driver_max_operations;
          Alcotest.test_case "deletes cloned static" `Quick
            test_driver_deletes_fully_cloned_static;
          Alcotest.test_case "staged devirtualization" `Quick
            test_driver_staged_devirtualization;
          Alcotest.test_case "all workloads preserved" `Slow
            test_driver_all_workloads_preserved;
          Alcotest.test_case "report totals" `Quick test_report_totals;
          Alcotest.test_case "report pp zero cost" `Quick
            test_report_pp_zero_cost ] ) ]
