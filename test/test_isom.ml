(* The isom object-file suite.

   What must hold, in order of importance:

   1. Separate compilation is *bit-identical* to whole-program
      compilation — same IR, same HLO report, same decision journal —
      for hand-written programs, for all suite workloads, and for
      random programs (qcheck).
   2. Loading is fail-safe: truncation, bit flips, wrong magic,
      foreign versions and manifest corruption all degrade to
      recompilation, never to a crash or a wrong program.
   3. The incremental planner recompiles exactly what changed: nothing
      on a warm rebuild, one module when its source changes, and
      dependents (reason [ext-changed]) when an interface they
      reference changes — and only then.
   4. Profile fragments merged across a relink reproduce the trained
      profile's effect on HLO exactly. *)

module U = Ucode.Types
module Codec = Isom.Codec
module File = Isom.File
module Build = Isom.Build
module Manifest = Isom.Manifest

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_tmp_dir f =
  let dir = Filename.temp_file "isom_test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let source = Minic.Compile.source

(* A two-module program exercising the cross-module surface isoms must
   preserve: exported/static routines, exported/static globals with
   array and scalar flavors, direct and indirect calls, recursion. *)
let lib_src =
  {|
  public global table[4];
  public global seed = 7;
  global hidden = 3;

  static func twice(x) { return x + x; }

  func mix(a, b) { return twice(a) ^ (b * hidden); }

  func fill(n) {
    var i = 0;
    while (i < 4) { table[i] = mix(i, n); i = i + 1; }
    return table[n & 3];
  }
|}

let app_src =
  {|
  func apply(f, x) { return f(x); }

  static func succ(x) { return x + 1; }

  func main() {
    var r = fill(seed & 3) + mix(2, 3);
    r = r + apply(&succ, 40);
    print_int(r);
    return r & 255;
  }
|}

(* lib with [mix]'s arity changed — an interface change app *does*
   reference (the resulting arity mismatch at app's call site is a
   warning, not an error). *)
let lib_src_mix3 =
  {|
  public global table[4];
  public global seed = 7;
  global hidden = 3;

  static func twice(x) { return x + x; }

  func mix(a, b, c) { return twice(a) ^ (b * hidden); }

  func fill(n) {
    var i = 0;
    while (i < 4) { table[i] = mix(i, n, 0); i = i + 1; }
    return table[n & 3];
  }
|}

let two_module_sources =
  [ source ~module_name:"lib" lib_src; source ~module_name:"app" app_src ]

let compile_separately ?main sources =
  let isoms, _diags =
    Build.compile_inputs (List.map (fun s -> Build.Src s) sources)
  in
  (isoms, Build.link ?main isoms)

(* ------------------------------------------------------------------ *)
(* Codec primitives.                                                   *)

let test_codec_roundtrip () =
  let buf = Buffer.create 64 in
  let ints = [ 0; 1; -1; 42; max_int; min_int ] in
  List.iter (Codec.put_int buf) ints;
  Codec.put_int64 buf Int64.min_int;
  Codec.put_float buf 3.141592653589793;
  Codec.put_float buf (-0.0);
  Codec.put_float buf infinity;
  Codec.put_bool buf true;
  Codec.put_bool buf false;
  Codec.put_string buf "";
  Codec.put_string buf "héllo\nworld\000!";
  Codec.put_list buf Codec.put_int [ 3; 1; 4 ];
  Codec.put_option buf Codec.put_string None;
  Codec.put_option buf Codec.put_string (Some "x");
  Codec.put_tag buf 255;
  let r = Codec.reader (Buffer.contents buf) in
  List.iter (fun n -> check_int "int" n (Codec.get_int r)) ints;
  Alcotest.(check int64) "int64" Int64.min_int (Codec.get_int64 r);
  Alcotest.(check (float 0.0)) "float" 3.141592653589793 (Codec.get_float r);
  check_bool "neg zero sign" true (1.0 /. Codec.get_float r < 0.0);
  Alcotest.(check (float 0.0)) "inf" infinity (Codec.get_float r);
  check_bool "true" true (Codec.get_bool r);
  check_bool "false" false (Codec.get_bool r);
  check_string "empty string" "" (Codec.get_string r);
  check_string "string" "héllo\nworld\000!" (Codec.get_string r);
  Alcotest.(check (list int)) "list" [ 3; 1; 4 ] (Codec.get_list r Codec.get_int);
  Alcotest.(check (option string)) "none" None
    (Codec.get_option r Codec.get_string);
  Alcotest.(check (option string)) "some" (Some "x")
    (Codec.get_option r Codec.get_string);
  check_int "tag" 255 (Codec.get_tag r);
  check_bool "all consumed" true (Codec.at_end r)

let expect_corrupt name (f : unit -> unit) =
  match f () with
  | () -> Alcotest.fail (name ^ ": expected Codec.Corrupt")
  | exception Codec.Corrupt _ -> ()

let test_codec_rejects_corruption () =
  expect_corrupt "eof int" (fun () ->
      ignore (Codec.get_int (Codec.reader "abc")));
  expect_corrupt "bad bool" (fun () ->
      ignore (Codec.get_bool (Codec.reader "\002")));
  (* A string length far beyond the remaining bytes must be rejected
     before any allocation happens. *)
  let buf = Buffer.create 16 in
  Codec.put_int buf 1_000_000;
  Buffer.add_string buf "xy";
  expect_corrupt "oversized string" (fun () ->
      ignore (Codec.get_string (Codec.reader (Buffer.contents buf))));
  let buf = Buffer.create 16 in
  Codec.put_int buf (-1);
  expect_corrupt "negative count" (fun () ->
      ignore (Codec.get_list (Codec.reader (Buffer.contents buf)) Codec.get_int))

(* ------------------------------------------------------------------ *)
(* The shared store container.                                         *)

let test_store_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "x.store" in
  let payload = "arbitrary \000 binary\npayload" in
  Alcotest.(check (result unit string))
    "save" (Ok ())
    (Store.save ~path ~magic:"test-store" ~version:3 payload);
  Alcotest.(check (result (option string) string))
    "load" (Ok (Some payload))
    (Store.load ~path ~magic:"test-store" ~version:3);
  Alcotest.(check (result (option string) string))
    "missing file is Ok None" (Ok None)
    (Store.load ~path:(Filename.concat dir "nope") ~magic:"test-store"
       ~version:3)

let test_store_fail_safe () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "x.store" in
  let is_error what = function
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (what ^ ": expected Error")
  in
  (match Store.save ~path ~magic:"test-store" ~version:3 "payload" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  is_error "wrong magic" (Store.load ~path ~magic:"other" ~version:3);
  is_error "wrong version" (Store.load ~path ~magic:"test-store" ~version:4);
  (* Flip a payload byte: the checksum must catch it. *)
  let contents =
    In_channel.with_open_bin path (fun ic ->
        In_channel.input_all ic)
  in
  let flipped = Bytes.of_string contents in
  let last = Bytes.length flipped - 1 in
  Bytes.set flipped last (Char.chr (Char.code (Bytes.get flipped last) lxor 1));
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc flipped);
  is_error "flipped byte" (Store.load ~path ~magic:"test-store" ~version:3);
  (* Truncation. *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub contents 0 (last - 3)));
  is_error "truncated" (Store.load ~path ~magic:"test-store" ~version:3);
  (* Garbage. *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "not a store file at all");
  is_error "garbage" (Store.load ~path ~magic:"test-store" ~version:3)

(* ------------------------------------------------------------------ *)
(* Isom file roundtrip and fail-safe reads.                            *)

let build_isoms sources =
  fst (Build.compile_inputs (List.map (fun s -> Build.Src s) sources))

let test_isom_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let isoms = build_isoms two_module_sources in
  List.iter
    (fun isom ->
      let path = Filename.concat dir (File.file_name (File.name isom)) in
      (match File.write ~path isom with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      match File.read ~path with
      | Error m -> Alcotest.fail m
      | Ok got ->
        check_string "module name" (File.name isom) (File.name got);
        check_bool "identical after roundtrip" true (isom = got))
    isoms

let test_isom_read_fail_safe () =
  with_tmp_dir @@ fun dir ->
  let isoms = build_isoms two_module_sources in
  let isom = List.hd isoms in
  let path = Filename.concat dir "m.isom" in
  (match File.write ~path isom with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let contents =
    In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)
  in
  let write s =
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)
  in
  let is_error what =
    match File.read ~path with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (what ^ ": expected Error")
  in
  write (String.sub contents 0 (String.length contents / 2));
  is_error "truncated";
  let flipped = Bytes.of_string contents in
  let mid = Bytes.length flipped / 2 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 255));
  write (Bytes.to_string flipped);
  is_error "flipped byte";
  write ("wrong-magic" ^ String.sub contents (String.length File.magic)
           (String.length contents - String.length File.magic));
  is_error "wrong magic";
  write "";
  is_error "empty file";
  (match File.read ~path:(Filename.concat dir "absent.isom") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file: expected Error");
  (* And an honest write still reads back after all that. *)
  write contents;
  match File.read ~path with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Separate vs whole-program bit-identity.                             *)

type run_result = { rr_ir : string; rr_report : string; rr_journal : string }

let journal_of collector =
  String.concat "\n"
    (List.map
       (fun (d : Telemetry.Event.decision) ->
         Printf.sprintf "%s %s %s %s %d %.6g %d"
           (Telemetry.Event.kind_name d.Telemetry.Event.d_kind)
           (match d.Telemetry.Event.d_verdict with
           | Telemetry.Event.Accepted -> "accepted"
           | Telemetry.Event.Rejected r -> "rejected(" ^ r ^ ")")
           d.Telemetry.Event.d_subject d.Telemetry.Event.d_context
           d.Telemetry.Event.d_site d.Telemetry.Event.d_score
           d.Telemetry.Event.d_pass)
       (Telemetry.Collector.decisions collector))

let hlo_result program ~profile =
  let collector = Telemetry.Collector.create () in
  Telemetry.Collector.install collector;
  Fun.protect ~finally:Telemetry.Collector.uninstall @@ fun () ->
  let config = { Hlo.Config.default with Hlo.Config.validate = true } in
  let res = Hlo.Driver.run ~config ~profile program in
  { rr_ir = Ucode.Pp.program_to_string res.Hlo.Driver.program;
    rr_report = Fmt.str "%a" Hlo.Report.pp res.Hlo.Driver.report;
    rr_journal = journal_of collector }

let check_same_result what (a : run_result) (b : run_result) =
  check_string (what ^ ": IR") a.rr_ir b.rr_ir;
  check_string (what ^ ": report") a.rr_report b.rr_report;
  check_string (what ^ ": journal") a.rr_journal b.rr_journal

let separate_equals_whole ?main what sources =
  let whole, _ = Minic.Compile.compile_program ?main sources in
  let _isoms, (linked, _maps, seed) = compile_separately ?main sources in
  check_string
    (what ^ ": linked IR")
    (Ucode.Pp.program_to_string whole)
    (Ucode.Pp.program_to_string linked);
  check_bool (what ^ ": fresh isoms carry no profile") true (seed = None);
  let profile = (Interp.train whole).Interp.profile in
  check_same_result what (hlo_result whole ~profile)
    (hlo_result linked ~profile)

let test_separate_equals_whole_two_modules () =
  separate_equals_whole "two modules" two_module_sources

let test_separate_equals_whole_workloads () =
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      let sources =
        Workloads.Suite.sources b ~input:Workloads.Suite.Train
      in
      separate_equals_whole b.Workloads.Suite.b_name sources)
    Workloads.Suite.all

(* Roundtripping the isoms through disk must change nothing. *)
let test_link_from_disk_equals_whole () =
  with_tmp_dir @@ fun dir ->
  let isoms = build_isoms two_module_sources in
  let reread =
    List.map
      (fun isom ->
        let path = Filename.concat dir (File.file_name (File.name isom)) in
        (match File.write ~path isom with
        | Ok () -> ()
        | Error m -> Alcotest.fail m);
        match File.read ~path with
        | Ok i -> i
        | Error m -> Alcotest.fail m)
      isoms
  in
  let whole, _ = Minic.Compile.compile_program two_module_sources in
  let linked, _, _ = Build.link reread in
  check_string "disk roundtrip IR"
    (Ucode.Pp.program_to_string whole)
    (Ucode.Pp.program_to_string linked)

(* ------------------------------------------------------------------ *)
(* Incremental builds.                                                 *)

let counters_of collector =
  let c = Telemetry.Collector.counters collector in
  fun name -> int_of_float (Telemetry.Counters.get c name)

let with_collector f =
  let collector = Telemetry.Collector.create () in
  Telemetry.Collector.install collector;
  Fun.protect ~finally:Telemetry.Collector.uninstall (fun () -> f collector)

let test_incremental_warm_rebuild () =
  with_tmp_dir @@ fun dir ->
  let _isoms, _diags, cold = Build.compile_incremental ~dir two_module_sources in
  check_int "cold: all recompiled" 2 (List.length cold.Build.s_recompiled);
  with_collector @@ fun collector ->
  let isoms, _diags, warm = Build.compile_incremental ~dir two_module_sources in
  check_int "warm: all reused" 2 (List.length warm.Build.s_reused);
  check_int "warm: none recompiled" 0 (List.length warm.Build.s_recompiled);
  let count = counters_of collector in
  check_int "hit counter" 2 (count "isom.manifest.hit");
  check_int "miss counter" 0 (count "isom.manifest.miss");
  let whole, _ = Minic.Compile.compile_program two_module_sources in
  let linked, _, _ = Build.link isoms in
  check_string "warm IR = whole IR"
    (Ucode.Pp.program_to_string whole)
    (Ucode.Pp.program_to_string linked)

let test_incremental_one_dirty_module () =
  with_tmp_dir @@ fun dir ->
  let _ = Build.compile_incremental ~dir two_module_sources in
  (* Change app's body without touching its exports: lib must be
     reused, app recompiled for reason source-changed. *)
  let app' =
    source ~module_name:"app"
      (app_src ^ "\nstatic func unused_extra(x) { return x - 1; }")
  in
  let sources' = [ List.hd two_module_sources; app' ] in
  with_collector @@ fun collector ->
  let isoms, _diags, st = Build.compile_incremental ~dir sources' in
  Alcotest.(check (list string)) "reused" [ "lib" ] st.Build.s_reused;
  Alcotest.(check (list (pair string string)))
    "recompiled" [ ("app", "source-changed") ] st.Build.s_recompiled;
  let count = counters_of collector in
  check_int "hit counter" 1 (count "isom.manifest.hit");
  check_int "source-changed counter" 1 (count "isom.recompile.source-changed");
  let whole, _ = Minic.Compile.compile_program sources' in
  let linked, _, _ = Build.link isoms in
  check_string "one-dirty IR = whole IR"
    (Ucode.Pp.program_to_string whole)
    (Ucode.Pp.program_to_string linked)

let test_incremental_export_change_invalidates_dependents () =
  with_tmp_dir @@ fun dir ->
  let _ = Build.compile_incremental ~dir two_module_sources in
  (* Change the arity of [mix], which app calls: app's source is
     unchanged, but the interface slice it was compiled against is
     not, so it must be recompiled with reason ext-changed.  (The
     arity mismatch at app's call site is a warning, not an error.) *)
  let lib' = source ~module_name:"lib" lib_src_mix3 in
  let sources' = [ lib'; List.nth two_module_sources 1 ] in
  with_collector @@ fun collector ->
  let isoms, _diags, st = Build.compile_incremental ~dir sources' in
  Alcotest.(check (list (pair string string)))
    "recompiled"
    [ ("lib", "source-changed"); ("app", "ext-changed") ]
    st.Build.s_recompiled;
  let count = counters_of collector in
  check_int "ext-changed counter" 1 (count "isom.recompile.ext-changed");
  let whole, _ = Minic.Compile.compile_program sources' in
  let linked, _, _ = Build.link isoms in
  check_string "ext-change IR = whole IR"
    (Ucode.Pp.program_to_string whole)
    (Ucode.Pp.program_to_string linked)

let test_incremental_unreferenced_export_keeps_dependents () =
  with_tmp_dir @@ fun dir ->
  let _ = Build.compile_incremental ~dir two_module_sources in
  (* Add an export app never mentions: only lib rebuilds.  The
     invalidation key hashes the *referenced* slice of the export
     environment, so unrelated interface growth does not cascade. *)
  let lib' =
    source ~module_name:"lib" (lib_src ^ "\nfunc extra(x) { return x; }")
  in
  let sources' = [ lib'; List.nth two_module_sources 1 ] in
  let isoms, _diags, st = Build.compile_incremental ~dir sources' in
  Alcotest.(check (list string)) "reused" [ "app" ] st.Build.s_reused;
  Alcotest.(check (list (pair string string)))
    "recompiled" [ ("lib", "source-changed") ] st.Build.s_recompiled;
  let whole, _ = Minic.Compile.compile_program sources' in
  let linked, _, _ = Build.link isoms in
  check_string "unreferenced-export IR = whole IR"
    (Ucode.Pp.program_to_string whole)
    (Ucode.Pp.program_to_string linked)

let test_incremental_corrupt_manifest_degrades () =
  with_tmp_dir @@ fun dir ->
  let _ = Build.compile_incremental ~dir two_module_sources in
  Out_channel.with_open_bin (Filename.concat dir Manifest.file_name)
    (fun oc -> Out_channel.output_string oc "scrambled");
  with_collector @@ fun collector ->
  let _isoms, _diags, st = Build.compile_incremental ~dir two_module_sources in
  check_int "all recompiled" 2 (List.length st.Build.s_recompiled);
  let count = counters_of collector in
  check_int "corrupt counter" 1 (count "isom.manifest.corrupt");
  (* The rebuild repaired the manifest. *)
  let _isoms, _diags, st = Build.compile_incremental ~dir two_module_sources in
  check_int "repaired: all reused" 2 (List.length st.Build.s_reused)

let test_incremental_corrupt_isom_degrades () =
  with_tmp_dir @@ fun dir ->
  let _ = Build.compile_incremental ~dir two_module_sources in
  let path = Filename.concat dir (File.file_name "lib") in
  let contents =
    In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)
  in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub contents 0 (String.length contents / 3)));
  with_collector @@ fun collector ->
  let isoms, _diags, st = Build.compile_incremental ~dir two_module_sources in
  Alcotest.(check (list (pair string string)))
    "only the corrupt module recompiles"
    [ ("lib", "unreadable") ] st.Build.s_recompiled;
  check_int "unreadable counter" 1
    (counters_of collector "isom.recompile.unreadable");
  let whole, _ = Minic.Compile.compile_program two_module_sources in
  let linked, _, _ = Build.link isoms in
  check_string "recovered IR = whole IR"
    (Ucode.Pp.program_to_string whole)
    (Ucode.Pp.program_to_string linked)

(* ------------------------------------------------------------------ *)
(* Stale-interface detection at link time.                             *)

let test_link_rejects_stale_interface () =
  let isoms_v1 = build_isoms two_module_sources in
  let lib' = source ~module_name:"lib" lib_src_mix3 in
  let isoms_v2 =
    build_isoms [ lib'; List.nth two_module_sources 1 ]
  in
  (* New lib (mix's arity changed) + old app (compiled against the old
     arity): the interface slice app references no longer matches. *)
  let mixed = [ List.hd isoms_v2; List.nth isoms_v1 1 ] in
  match Build.link mixed with
  | _ -> Alcotest.fail "expected Link_error for stale interface"
  | exception Ucode.Linker.Link_error msg ->
    let contains hay needle =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    check_bool "names the stale module" true (contains msg "module app")

(* The flip side: growing lib's interface with an export app never
   references keeps old app isoms linkable — the check is per-module
   over referenced names, not a whole-environment fingerprint. *)
let test_link_accepts_compatible_interface_growth () =
  let isoms_v1 = build_isoms two_module_sources in
  let lib' =
    source ~module_name:"lib" (lib_src ^ "\nfunc extra(x) { return x; }")
  in
  let isoms_v2 = build_isoms [ lib'; List.nth two_module_sources 1 ] in
  let mixed = [ List.hd isoms_v2; List.nth isoms_v1 1 ] in
  let whole, _ =
    Minic.Compile.compile_program [ lib'; List.nth two_module_sources 1 ]
  in
  let linked, _, _ = Build.link mixed in
  check_string "grown-interface IR = whole IR"
    (Ucode.Pp.program_to_string whole)
    (Ucode.Pp.program_to_string linked)

(* ------------------------------------------------------------------ *)
(* Profile fragments.                                                  *)

let test_fragments_reproduce_trained_profile () =
  with_tmp_dir @@ fun dir ->
  let isoms, _diags, _st = Build.compile_incremental ~dir two_module_sources in
  let program, maps, seed = Build.link isoms in
  check_bool "no fragments yet" true (seed = None);
  let profile = (Interp.train program).Interp.profile in
  let paired =
    List.map
      (fun i -> (Filename.concat dir (File.file_name (File.name i)), i))
      isoms
  in
  (match Build.write_fragments paired ~maps ~profile with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* Reload and relink: every module now carries a fragment, so the
     link must produce a merged profile whose effect on HLO is
     identical to the trained one. *)
  let reread =
    List.map
      (fun (path, _) ->
        match File.read ~path with
        | Ok i -> i
        | Error m -> Alcotest.fail m)
      paired
  in
  let program', _maps', seed' = Build.link reread in
  check_string "relink IR unchanged"
    (Ucode.Pp.program_to_string program)
    (Ucode.Pp.program_to_string program');
  match seed' with
  | None -> Alcotest.fail "expected a merged profile"
  | Some merged ->
    check_same_result "merged vs trained"
      (hlo_result program ~profile)
      (hlo_result program' ~profile:merged)

let test_partial_fragments_are_discarded () =
  with_tmp_dir @@ fun dir ->
  let isoms, _diags, _st = Build.compile_incremental ~dir two_module_sources in
  let program, maps, _ = Build.link isoms in
  let profile = (Interp.train program).Interp.profile in
  let paired =
    List.map
      (fun i -> (Filename.concat dir (File.file_name (File.name i)), i))
      isoms
  in
  (match Build.write_fragments paired ~maps ~profile with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* Dirty one module: its rebuilt isom has an empty fragment, so the
     all-or-nothing rule must discard the seed entirely. *)
  let app' =
    source ~module_name:"app"
      (app_src ^ "\nstatic func unused_extra(x) { return x - 1; }")
  in
  let isoms', _diags, st =
    Build.compile_incremental ~dir [ List.hd two_module_sources; app' ]
  in
  Alcotest.(check (list string)) "lib reused" [ "lib" ] st.Build.s_reused;
  let _program', _maps', seed' = Build.link isoms' in
  check_bool "partial fragments discarded" true (seed' = None)

(* ------------------------------------------------------------------ *)
(* qcheck: random programs compile identically through isoms.          *)

let prop_separate_equals_whole =
  QCheck.Test.make ~count:30
    ~name:"random programs: isom separate compile + link = whole-program"
    Prog_gen.arbitrary_sources (fun sources ->
      let whole, _ = Minic.Compile.compile_program sources in
      let isoms, _ =
        Build.compile_inputs (List.map (fun s -> Build.Src s) sources)
      in
      (* In-memory write/read roundtrip for every module. *)
      List.iter
        (fun isom ->
          match File.decode (File.encode isom) with
          | Ok got ->
            if got <> isom then
              QCheck.Test.fail_report "isom codec roundtrip changed the module"
          | Error m -> QCheck.Test.fail_report ("decode failed: " ^ m))
        isoms;
      let linked, _, _ = Build.link isoms in
      Ucode.Pp.program_to_string whole = Ucode.Pp.program_to_string linked)

let () =
  Alcotest.run "isom"
    [ ( "codec",
        [ Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "rejects corruption" `Quick
            test_codec_rejects_corruption ] );
      ( "store",
        [ Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "fail-safe" `Quick test_store_fail_safe ] );
      ( "file",
        [ Alcotest.test_case "roundtrip" `Quick test_isom_roundtrip;
          Alcotest.test_case "fail-safe reads" `Quick
            test_isom_read_fail_safe ] );
      ( "bit-identity",
        [ Alcotest.test_case "two modules" `Quick
            test_separate_equals_whole_two_modules;
          Alcotest.test_case "all workloads" `Slow
            test_separate_equals_whole_workloads;
          Alcotest.test_case "disk roundtrip" `Quick
            test_link_from_disk_equals_whole ] );
      ( "incremental",
        [ Alcotest.test_case "warm rebuild reuses everything" `Quick
            test_incremental_warm_rebuild;
          Alcotest.test_case "one dirty module" `Quick
            test_incremental_one_dirty_module;
          Alcotest.test_case "export change invalidates dependents" `Quick
            test_incremental_export_change_invalidates_dependents;
          Alcotest.test_case "unreferenced export keeps dependents" `Quick
            test_incremental_unreferenced_export_keeps_dependents;
          Alcotest.test_case "corrupt manifest degrades" `Quick
            test_incremental_corrupt_manifest_degrades;
          Alcotest.test_case "corrupt isom degrades" `Quick
            test_incremental_corrupt_isom_degrades ] );
      ( "link",
        [ Alcotest.test_case "stale interface rejected" `Quick
            test_link_rejects_stale_interface;
          Alcotest.test_case "compatible interface growth accepted" `Quick
            test_link_accepts_compatible_interface_growth ] );
      ( "profile-fragments",
        [ Alcotest.test_case "merge reproduces training" `Quick
            test_fragments_reproduce_trained_profile;
          Alcotest.test_case "partial fragments discarded" `Quick
            test_partial_fragments_are_discarded ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_separate_equals_whole ] ) ]
