(* Tests for the differential correctness subsystem (lib/oracle):

   - unit tests of the oracle's outcome-comparison policy, including
     the erasable-trap prefix rule and divergence asymmetry;
   - the metamorphic property: profile mutations are semantics-neutral;
   - fuzz-engine plumbing (bucket stability, combined-source round
     trip, run_case classification);
   - ddmin and statement splitting;
   - chaos validation: each deliberately seeded miscompilation
     (Hlo.Chaos) must be caught by a short campaign over the corpus +
     generated programs, reduced to < 30 lines, and the reduced case
     must pass once the bug is disarmed. *)

let interp_config = Prog_gen.interp_config

(* ------------------------------------------------------------------ *)
(* Outcome comparison policy.                                          *)

let ob ?(exit = 0L) ?(out = "") ?(globals = []) () =
  { Oracle.ob_exit = exit; ob_output = out; ob_globals = globals }

let cls_of = function None -> "agree" | Some (cls, _) -> cls

let check_cls name expected ~pre ~post =
  Alcotest.(check string) name expected (cls_of (Oracle.compare_outcomes ~pre ~post))

let test_compare_finished () =
  let a = ob ~exit:3L ~out:"1\n2\n" ~globals:[ ("gs", [| 7L |]) ] () in
  check_cls "identical" "agree" ~pre:(Oracle.Finished a) ~post:(Oracle.Finished a);
  check_cls "exit differs" "exit"
    ~pre:(Oracle.Finished a)
    ~post:(Oracle.Finished (ob ~exit:4L ~out:"1\n2\n" ~globals:[ ("gs", [| 7L |]) ] ()));
  check_cls "output differs" "output"
    ~pre:(Oracle.Finished a)
    ~post:(Oracle.Finished (ob ~exit:3L ~out:"1\n" ~globals:[ ("gs", [| 7L |]) ] ()));
  check_cls "global differs" "globals:gs"
    ~pre:(Oracle.Finished a)
    ~post:(Oracle.Finished (ob ~exit:3L ~out:"1\n2\n" ~globals:[ ("gs", [| 8L |]) ] ()))

let test_compare_traps () =
  let at out = ob ~out () in
  let trap kind out = Oracle.Trapped { kind; partial = at out } in
  check_cls "same abort" "agree" ~pre:(trap "abort" "x\n") ~post:(trap "abort" "x\n");
  check_cls "call-borne kinds strict" "trap_kind"
    ~pre:(trap "abort" "") ~post:(trap "indirect_arity" "");
  check_cls "call-borne output strict" "trap_output"
    ~pre:(trap "abort" "1\n") ~post:(trap "abort" "1\n2\n");
  check_cls "finished vs abort" "trap_kind"
    ~pre:(Oracle.Finished (at "1\n")) ~post:(trap "abort" "1\n")

let test_compare_erasable () =
  let trap kind out = Oracle.Trapped { kind; partial = ob ~out () } in
  (* A dead division the optimizer deleted: post runs further.  Legal
     as long as pre's output is a prefix of post's. *)
  check_cls "div trap erased, longer run" "agree"
    ~pre:(trap "division_by_zero" "1\n")
    ~post:(Oracle.Finished (ob ~exit:9L ~out:"1\n2\n3\n" ()));
  check_cls "oob trap erased into later trap" "agree"
    ~pre:(trap "out_of_bounds" "1\n") ~post:(trap "abort" "1\n2\n");
  check_cls "erased trap may diverge" "agree"
    ~pre:(trap "division_by_zero" "1\n") ~post:(Oracle.Diverged "fuel");
  check_cls "but output up to the trap is pinned" "erasable_trap_output"
    ~pre:(trap "division_by_zero" "1\n2\n")
    ~post:(Oracle.Finished (ob ~out:"1\n3\n" ()));
  (* The rule is one-directional: a post-only erasable trap that cut
     output short is still a miscompilation. *)
  check_cls "introduced trap not erased" "trap_kind"
    ~pre:(Oracle.Finished (ob ~out:"1\n2\n" ()))
    ~post:(trap "division_by_zero" "1\n")

let test_compare_divergence () =
  let fin = Oracle.Finished (ob ~out:"1\n" ()) in
  check_cls "pre divergence agrees with anything" "agree"
    ~pre:(Oracle.Diverged "fuel") ~post:fin;
  check_cls "both diverged" "agree"
    ~pre:(Oracle.Diverged "fuel") ~post:(Oracle.Diverged "call_depth");
  check_cls "post-only divergence flagged" "introduced_divergence"
    ~pre:fin ~post:(Oracle.Diverged "fuel")

(* ------------------------------------------------------------------ *)
(* observe / check_transform on real programs.                         *)

let compile sources = fst (Minic.Compile.compile_program sources)

let src name text = Minic.Compile.source ~module_name:name text

let test_observe_classifies () =
  let finished =
    compile
      [ src "m" "public global gs; func main() { gs = 5; print_int(gs); return 2; }" ]
  in
  (match Oracle.observe ~config:interp_config finished with
  | Oracle.Finished o ->
    Alcotest.(check int64) "exit" 2L o.Oracle.ob_exit;
    Alcotest.(check string) "output" "5\n" o.Oracle.ob_output;
    Alcotest.(check bool) "gs recorded" true
      (List.exists (fun (_, cells) -> cells = [| 5L |]) o.Oracle.ob_globals)
  | other ->
    Alcotest.failf "expected Finished, got %s" (Oracle.outcome_to_string other));
  let trapping =
    compile [ src "m" "func main() { print_int(1); var d = 0; return 7 / d; }" ]
  in
  match Oracle.observe ~config:interp_config trapping with
  | Oracle.Trapped { kind = "division_by_zero"; partial } ->
    Alcotest.(check string) "partial output" "1\n" partial.Oracle.ob_output
  | other ->
    Alcotest.failf "expected division trap, got %s" (Oracle.outcome_to_string other)

let test_check_transform_clean () =
  let p =
    compile
      [ src "lib" "func twice(x) { return x + x; }";
        src "app"
          "func main() { var s = 0; for (var i = 0; i < 10; i = i + 1) { s = s + twice(i); } print_int(s); return 0; }" ]
  in
  let res = Oracle.check_transform ~interp_config Oracle.default_check p in
  (match res.Oracle.tr_verdict with
  | None -> ()
  | Some (cls, detail) -> Alcotest.failf "unexpected verdict [%s]: %s" cls detail);
  match res.Oracle.tr_pre with
  | Oracle.Finished o -> Alcotest.(check string) "output" "90\n" o.Oracle.ob_output
  | other -> Alcotest.failf "expected Finished, got %s" (Oracle.outcome_to_string other)

(* The metamorphic property: the profile only steers heuristics, so
   any mutation of it must leave observable behavior intact. *)
let prop_mutations_neutral =
  let mutations =
    [ Oracle.Scale 0.5; Oracle.Scale 1000.0; Oracle.Zero; Oracle.Stale 42 ]
  in
  QCheck.Test.make ~count:12 ~name:"profile mutations are semantics-neutral"
    Prog_gen.arbitrary_program (fun p ->
      List.for_all
        (fun m ->
          let check =
            { Oracle.default_check with
              Oracle.ck_config =
                Hlo.Config.with_scope Oracle.default_check.Oracle.ck_config
                  Hlo.Config.CP;
              ck_mutation = m }
          in
          let res = Oracle.check_transform ~interp_config check p in
          match res.Oracle.tr_verdict with
          | None -> true
          | Some (cls, detail) ->
            QCheck.Test.fail_report
              (Printf.sprintf "mutation %s broke semantics [%s]: %s"
                 (Oracle.mutation_to_string m) cls detail))
        mutations)

(* ------------------------------------------------------------------ *)
(* Fuzz-engine plumbing.                                               *)

let test_bucket_stability () =
  let crash c =
    Oracle.Fuzz.bucket_of_kind (Oracle.Fuzz.Crash { exn_class = c; detail = "d" })
  in
  let mism c =
    Oracle.Fuzz.bucket_of_kind (Oracle.Fuzz.Mismatch { cls = c; detail = "d" })
  in
  (* Stage indices vary run to run; digits are stripped before hashing
     so every pass of the same stage lands in one bucket. *)
  Alcotest.(check string) "pass index ignored"
    (crash "invalid_ir:clone pass 0") (crash "invalid_ir:clone pass 3");
  Alcotest.(check bool) "stages distinguished" false
    (String.equal (crash "invalid_ir:clone pass 0") (crash "invalid_ir:inline pass 0"));
  Alcotest.(check bool) "mismatch classes distinguished" false
    (String.equal (mism "output") (mism "globals:gs"));
  Alcotest.(check bool) "crash vs mismatch distinguished" false
    (String.equal (crash "output") (mism "output"));
  Alcotest.(check int) "bucket is short hex" 10 (String.length (mism "output"))

let test_combined_roundtrip () =
  let sources =
    [ src "lib" "public global gs;\nfunc f(x) { return x + 1; }";
      src "app" "func main() { gs = f(4); print_int(gs); return 0; }" ]
  in
  let back = Oracle.Fuzz.parse_combined (Oracle.Fuzz.print_combined sources) in
  Alcotest.(check (list string)) "module names"
    (List.map (fun s -> s.Minic.Compile.src_module) sources)
    (List.map (fun s -> s.Minic.Compile.src_module) back);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "text survives"
        (String.trim a.Minic.Compile.src_text)
        (String.trim b.Minic.Compile.src_text))
    sources back;
  (* And the round-tripped program still means the same thing. *)
  Alcotest.(check string) "same behavior"
    (Oracle.outcome_to_string (Oracle.observe ~config:interp_config (compile sources)))
    (Oracle.outcome_to_string (Oracle.observe ~config:interp_config (compile back)))

let test_run_case_classification () =
  let case sources =
    { Oracle.Fuzz.c_label = "unit";
      c_sources = sources;
      c_check = Oracle.default_check }
  in
  (match
     Oracle.Fuzz.run_case ~interp_config (case [ src "m" "func main( { return 0; }" ])
   with
  | Oracle.Fuzz.Skipped _ -> ()
  | _ -> Alcotest.fail "parse error should be Skipped, not a finding");
  match
    Oracle.Fuzz.run_case ~interp_config
      (case [ src "m" "func main() { print_int(3); return 0; }" ])
  with
  | Oracle.Fuzz.Passed -> ()
  | Oracle.Fuzz.Skipped why -> Alcotest.failf "unexpected skip: %s" why
  | Oracle.Fuzz.Failed f ->
    Alcotest.failf "unexpected failure in bucket %s" f.Oracle.Fuzz.f_bucket

(* ------------------------------------------------------------------ *)
(* Reducer machinery.                                                  *)

let test_ddmin () =
  let items = List.init 32 succ in
  Alcotest.(check (list int)) "single culprit"
    [ 7 ]
    (Oracle.Reduce.ddmin ~test:(List.mem 7) items);
  Alcotest.(check (list int)) "interacting pair"
    [ 3; 21 ]
    (Oracle.Reduce.ddmin ~test:(fun l -> List.mem 3 l && List.mem 21 l) items);
  Alcotest.(check (list int)) "non-failing input unchanged"
    [ 1; 2; 3 ]
    (Oracle.Reduce.ddmin ~test:(fun _ -> false) [ 1; 2; 3 ]);
  (* 1-minimality: removing any single element breaks the predicate. *)
  let need l = List.length (List.filter (fun x -> x mod 5 = 0) l) >= 3 in
  let reduced = Oracle.Reduce.ddmin ~test:need items in
  Alcotest.(check bool) "still fails" true (need reduced);
  List.iteri
    (fun i _ ->
      let without = List.filteri (fun j _ -> j <> i) reduced in
      Alcotest.(check bool) "1-minimal" false (need without))
    reduced

let test_split_statements () =
  let source =
    "// header comment\nvar x = 1; if (x) {\n  x = 2; // trailing\n} else { }\n"
  in
  Alcotest.(check (list string)) "statement granularity"
    [ "var x = 1;"; "if (x) {"; "x = 2;"; "}"; "else {"; "}" ]
    (Oracle.Reduce.split_statements source);
  (* A for header contains semicolons inside parens and must stay
     atomic, or ddmin would produce garbage candidates. *)
  Alcotest.(check (list string)) "for header atomic"
    [ "for (var i = 0; i < 3; i = i + 1) {"; "print_int(i);"; "}" ]
    (Oracle.Reduce.split_statements
       "for (var i = 0; i < 3; i = i + 1) { print_int(i); }")

(* ------------------------------------------------------------------ *)
(* Chaos validation: seeded miscompilations must be caught, reduced    *)
(* small, and vanish when disarmed.                                    *)

(* Corpus programs first (the dune rule stages test/corpus/*.mc into
   the sandbox), then corpus again with an inlining-free config that
   forces cloning to carry the load, then generated wild programs. *)
let corpus_dir =
  (* cwd is _build/default/test under `dune runtest`, the project root
     under `dune exec test/test_oracle.exe`. *)
  lazy (if Sys.file_exists "corpus" then "corpus" else "test/corpus")

let corpus_cases =
  lazy
    (Sys.readdir (Lazy.force corpus_dir) |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".mc")
    |> List.sort compare
    |> List.map (fun f ->
           ( Filename.chop_suffix f ".mc",
             Oracle.Fuzz.parse_combined
               (In_channel.with_open_text
                  (Filename.concat (Lazy.force corpus_dir) f)
                  In_channel.input_all) )))

let clone_only_check =
  { Oracle.default_check with
    Oracle.ck_config =
      { Oracle.default_check.Oracle.ck_config with
        Hlo.Config.enable_inlining = false } }

(* A starved region-mode configuration: the tight budget makes every
   whole-body candidate unaffordable, so the inliner splits callees
   through the outliner on each corpus program — the only code path
   where [Region_lost_cold_path] can strike. *)
let region_check =
  { Oracle.default_check with
    Oracle.ck_config =
      { Oracle.default_check.Oracle.ck_config with
        Hlo.Config.inline_mode = Policy.Region;
        budget_percent = 2.0;
        region_cold_fraction = 0.6 } }

let chaos_case i =
  let corpus = Lazy.force corpus_cases in
  let n = List.length corpus in
  if i < 3 * n then
    let name, sources = List.nth corpus (i mod n) in
    let check =
      if i < n then Oracle.default_check
      else if i < 2 * n then clone_only_check
      else region_check
    in
    { Oracle.Fuzz.c_label = Printf.sprintf "corpus:%s" name;
      c_sources = sources;
      c_check = check }
  else
    let st = Random.State.make [| 0x9e3779; 1; i |] in
    { Oracle.Fuzz.c_label = Printf.sprintf "gen:%d" i;
      c_sources = Prog_gen.render_shape (Prog_gen.gen_shape Prog_gen.wild_opts st);
      c_check = Oracle.default_check }

let test_chaos bug () =
  let failure, reduced =
    Hlo.Chaos.with_bug bug (fun () ->
        let rec hunt i =
          if i >= 120 then
            Alcotest.failf "bug %s not caught within 120 cases" (Hlo.Chaos.name bug)
          else
            match Oracle.Fuzz.run_case ~interp_config (chaos_case i) with
            | Oracle.Fuzz.Failed f -> f
            | Oracle.Fuzz.Passed | Oracle.Fuzz.Skipped _ -> hunt (i + 1)
        in
        let failure = hunt 0 in
        (failure, Oracle.Reduce.reduce ~interp_config failure))
  in
  Alcotest.(check string) "reduction stays in the original bucket"
    failure.Oracle.Fuzz.f_bucket reduced.Oracle.Reduce.r_failure.Oracle.Fuzz.f_bucket;
  Alcotest.(check bool)
    (Printf.sprintf "reduced to < 30 lines (got %d)" reduced.Oracle.Reduce.r_lines)
    true
    (reduced.Oracle.Reduce.r_lines < 30);
  (* The minimal repro must be the bug's fault, not the program's: with
     chaos disarmed the very same case passes. *)
  match Oracle.Fuzz.run_case ~interp_config reduced.Oracle.Reduce.r_case with
  | Oracle.Fuzz.Passed -> ()
  | Oracle.Fuzz.Skipped why -> Alcotest.failf "reduced case stopped compiling: %s" why
  | Oracle.Fuzz.Failed f ->
    Alcotest.failf "reduced case still fails with chaos disarmed (bucket %s)"
      f.Oracle.Fuzz.f_bucket

let test_campaign_buckets () =
  let stats =
    Hlo.Chaos.with_bug Hlo.Chaos.Prune_address_taken (fun () ->
        Oracle.Fuzz.campaign ~interp_config ~max_runs:6 ~gen:chaos_case ())
  in
  Alcotest.(check int) "all corpus cases ran" 6 stats.Oracle.Fuzz.st_runs;
  Alcotest.(check bool) "campaign surfaced failures" true
    (stats.Oracle.Fuzz.st_failures > 0);
  Alcotest.(check bool) "failures were bucketed" true
    (stats.Oracle.Fuzz.st_buckets <> []);
  List.iter
    (fun (bucket, first, count) ->
      Alcotest.(check string) "bucket matches its first failure" bucket
        first.Oracle.Fuzz.f_bucket;
      Alcotest.(check bool) "count positive" true (count > 0))
    stats.Oracle.Fuzz.st_buckets

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "oracle"
    [ ( "compare",
        [ Alcotest.test_case "finished" `Quick test_compare_finished;
          Alcotest.test_case "traps" `Quick test_compare_traps;
          Alcotest.test_case "erasable traps" `Quick test_compare_erasable;
          Alcotest.test_case "divergence" `Quick test_compare_divergence ] );
      ( "transform",
        [ Alcotest.test_case "observe classifies" `Quick test_observe_classifies;
          Alcotest.test_case "clean transform" `Quick test_check_transform_clean;
          to_alcotest prop_mutations_neutral ] );
      ( "fuzz",
        [ Alcotest.test_case "bucket stability" `Quick test_bucket_stability;
          Alcotest.test_case "combined round trip" `Quick test_combined_roundtrip;
          Alcotest.test_case "run_case classification" `Quick
            test_run_case_classification;
          Alcotest.test_case "campaign buckets" `Quick test_campaign_buckets ] );
      ( "reduce",
        [ Alcotest.test_case "ddmin" `Quick test_ddmin;
          Alcotest.test_case "split statements" `Quick test_split_statements ] );
      ( "chaos",
        List.map
          (fun bug -> Alcotest.test_case (Hlo.Chaos.name bug) `Quick (test_chaos bug))
          Hlo.Chaos.all ) ]
