(* Tests for the telemetry subsystem: span nesting and timing
   monotonicity, counter arithmetic, JSONL / Chrome-trace round-trips
   (the emitted JSON is parsed back), and the driver integration —
   the decision journal must agree with the HLO report's counters. *)

module T = Telemetry.Collector
module TE = Telemetry.Event
module J = Telemetry.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 0.0001))

(* Run [f] with a fresh ambient collector; always uninstall. *)
let with_collector f =
  let c = T.create () in
  T.install c;
  Fun.protect ~finally:T.uninstall (fun () -> f c)

let span_end (s : TE.span) = s.TE.sp_start_us +. s.TE.sp_dur_us

(* ------------------------------------------------------------------ *)
(* Spans.                                                              *)

let test_span_nesting () =
  let c =
    with_collector (fun c ->
        T.with_span "outer" (fun () ->
            T.with_span "first" (fun () -> ());
            T.with_span "second"
              ~attrs:[ ("k", TE.Str "v") ]
              (fun () -> T.annotate "extra" (TE.Int 7)));
        c)
  in
  let spans = T.spans c in
  check_int "three spans" 3 (List.length spans);
  (* Spans are recorded at completion: first, second, outer. *)
  let first = List.nth spans 0 in
  let second = List.nth spans 1 in
  let outer = List.nth spans 2 in
  check_string "order: first" "first" first.TE.sp_name;
  check_string "order: second" "second" second.TE.sp_name;
  check_string "order: outer" "outer" outer.TE.sp_name;
  check_int "outer depth" 0 outer.TE.sp_depth;
  check_int "first depth" 1 first.TE.sp_depth;
  check_int "second depth" 1 second.TE.sp_depth;
  (* Timing monotonicity: children are contained in the parent, and
     the second child starts after the first ends. *)
  List.iter
    (fun (s : TE.span) ->
      check_bool (s.TE.sp_name ^ " nonneg duration") true (s.TE.sp_dur_us >= 0.0))
    spans;
  check_bool "first within outer" true
    (first.TE.sp_start_us >= outer.TE.sp_start_us
    && span_end first <= span_end outer);
  check_bool "second within outer" true
    (second.TE.sp_start_us >= outer.TE.sp_start_us
    && span_end second <= span_end outer);
  check_bool "siblings ordered" true (second.TE.sp_start_us >= span_end first);
  (* Attributes: declared ones and ones annotated mid-span. *)
  check_bool "declared attr" true
    (List.mem_assoc "k" second.TE.sp_attrs);
  check_bool "annotated attr" true
    (List.mem_assoc "extra" second.TE.sp_attrs)

let test_span_survives_exception () =
  let c =
    with_collector (fun c ->
        (try T.with_span "raises" (fun () -> failwith "boom")
         with Failure _ -> ());
        c)
  in
  check_int "span recorded despite raise" 1 (List.length (T.spans c))

let test_clock_monotonic () =
  let prev = ref (Telemetry.Clock.now_us ()) in
  for _ = 1 to 1000 do
    let t = Telemetry.Clock.now_us () in
    check_bool "strictly increasing" true (t > !prev);
    prev := t
  done

(* ------------------------------------------------------------------ *)
(* Counters.                                                           *)

let test_counters () =
  let t = Telemetry.Counters.create () in
  check_float "untouched is zero" 0.0 (Telemetry.Counters.get t "a");
  Telemetry.Counters.incr t "a";
  Telemetry.Counters.incr t "a";
  Telemetry.Counters.add t "a" 3.5;
  check_float "accumulates" 5.5 (Telemetry.Counters.get t "a");
  Telemetry.Counters.set t "g" 42.0;
  Telemetry.Counters.set t "g" 17.0;
  check_float "gauge overwrites" 17.0 (Telemetry.Counters.get t "g");
  check_bool "sorted listing" true
    (Telemetry.Counters.to_sorted_list t = [ ("a", 5.5); ("g", 17.0) ])

let test_ambient_counters () =
  let c =
    with_collector (fun c ->
        T.count "events" 2;
        T.count "events" 3;
        T.gauge "level" 9.0;
        c)
  in
  check_float "ambient count" 5.0 (Telemetry.Counters.get (T.counters c) "events");
  check_float "ambient gauge" 9.0 (Telemetry.Counters.get (T.counters c) "level");
  (* With no collector installed, everything is a no-op. *)
  T.count "ignored" 1;
  T.gauge "ignored" 1.0;
  T.with_span "ignored" (fun () -> ());
  check_float "no bleed-through" 0.0
    (Telemetry.Counters.get (T.counters c) "ignored")

(* ------------------------------------------------------------------ *)
(* JSON.                                                               *)

let test_json_roundtrip () =
  let doc =
    J.Assoc
      [ ("s", J.String "a \"quoted\"\n\ttab"); ("i", J.Int (-42));
        ("x", J.Float 3.25); ("b", J.Bool true); ("n", J.Null);
        ("l", J.List [ J.Int 1; J.String "two"; J.Assoc [] ]) ]
  in
  match J.of_string (J.to_string doc) with
  | Error e -> Alcotest.fail e
  | Ok parsed -> check_bool "round-trips" true (parsed = doc)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok _ -> Alcotest.fail ("accepted: " ^ s)
      | Error _ -> ())
    [ "{"; "[1,"; "\"open"; "{\"a\" 1}"; "[1] extra"; "" ]

(* ------------------------------------------------------------------ *)
(* Exporters, on a collector with known activity.                      *)

let make_active_collector () =
  with_collector (fun c ->
      T.with_span "root" (fun () ->
          T.with_span "child" (fun () -> T.count "work.items" 3);
          T.decision ~kind:TE.Inline ~verdict:TE.Accepted ~context:"caller"
            ~site:4 ~score:1.5 ~pass:0 "callee";
          T.decision ~kind:TE.Inline ~verdict:(TE.Rejected "budget")
            ~context:"caller" ~site:5 ~score:0.5 ~pass:0 "callee2");
      c)

let parse_exn s =
  match J.of_string s with Ok v -> v | Error e -> Alcotest.fail e

let member_exn name j =
  match J.member name j with
  | Some v -> v
  | None -> Alcotest.fail ("missing member " ^ name)

let test_jsonl_roundtrip () =
  let c = make_active_collector () in
  let lines =
    String.split_on_char '\n' (Telemetry.Export.jsonl c)
    |> List.filter (fun l -> l <> "")
  in
  (* 2 spans + 2 decisions + 1 counter. *)
  check_int "line count" 5 (List.length lines);
  let parsed = List.map parse_exn lines in
  let typed t =
    List.filter
      (fun j -> J.member "type" j = Some (J.String t))
      parsed
  in
  check_int "span lines" 2 (List.length (typed "span"));
  check_int "decision lines" 2 (List.length (typed "decision"));
  check_int "counter lines" 1 (List.length (typed "counter"));
  (* Spot-check one decision line's fields. *)
  let rejected =
    List.find
      (fun j -> J.member "verdict" j = Some (J.String "rejected"))
      (typed "decision")
  in
  check_bool "reason" true (member_exn "reason" rejected = J.String "budget");
  check_bool "kind" true (member_exn "kind" rejected = J.String "inline");
  check_bool "subject" true (member_exn "subject" rejected = J.String "callee2");
  (match J.to_number (member_exn "score" rejected) with
  | Some x -> check_float "score" 0.5 x
  | None -> Alcotest.fail "score not a number");
  (* And the counter line. *)
  let counter = List.hd (typed "counter") in
  check_bool "counter name" true
    (member_exn "name" counter = J.String "work.items");
  match J.to_number (member_exn "value" counter) with
  | Some x -> check_float "counter value" 3.0 x
  | None -> Alcotest.fail "counter value not a number"

let test_chrome_roundtrip () =
  let c = make_active_collector () in
  let trace = parse_exn (Telemetry.Export.chrome_string c) in
  let events =
    match J.to_list_opt (member_exn "traceEvents" trace) with
    | Some l -> l
    | None -> Alcotest.fail "traceEvents not a list"
  in
  (* 2 spans (X) + 2 decisions (i) + 1 counter (C). *)
  check_int "event count" 5 (List.length events);
  let of_ph ph =
    List.filter (fun j -> J.member "ph" j = Some (J.String ph)) events
  in
  check_int "complete events" 2 (List.length (of_ph "X"));
  check_int "instant events" 2 (List.length (of_ph "i"));
  check_int "counter events" 1 (List.length (of_ph "C"));
  (* Nesting: the child's [ts, ts+dur] interval lies within root's. *)
  let interval j =
    match
      (J.to_number (member_exn "ts" j), J.to_number (member_exn "dur" j))
    with
    | Some ts, Some dur -> (ts, ts +. dur)
    | _ -> Alcotest.fail "bad ts/dur"
  in
  let find_span name =
    List.find (fun j -> J.member "name" j = Some (J.String name)) (of_ph "X")
  in
  let r0, r1 = interval (find_span "root") in
  let c0, c1 = interval (find_span "child") in
  check_bool "child nested in root" true (c0 >= r0 && c1 <= r1);
  (* Every event carries pid/tid so trace viewers group them. *)
  List.iter
    (fun j ->
      check_bool "has pid" true (J.member "pid" j <> None);
      check_bool "has ts" true (J.member "ts" j <> None))
    events

(* ------------------------------------------------------------------ *)
(* Concurrency: domains hammering one collector lose nothing.          *)

let test_concurrent_no_lost_events () =
  let domains = 4 and spans_per_domain = 200 in
  let c =
    with_collector (fun c ->
        let work d () =
          for i = 1 to spans_per_domain do
            T.with_span "worker.span"
              ~attrs:[ ("domain", TE.Int d) ]
              (fun () ->
                T.count "worker.items" 1;
                if i mod 50 = 0 then
                  T.decision ~kind:TE.Inline ~verdict:TE.Accepted
                    ~site:((d * 1000) + i) "concurrent")
          done
        in
        let spawned =
          List.init (domains - 1) (fun d -> Domain.spawn (work (d + 1)))
        in
        work 0 ();
        List.iter Domain.join spawned;
        c)
  in
  check_int "no span lost" (domains * spans_per_domain)
    (List.length (T.spans c));
  check_int "no decision lost"
    (domains * (spans_per_domain / 50))
    (List.length (T.decisions c));
  check_float "no count lost"
    (float_of_int (domains * spans_per_domain))
    (Telemetry.Counters.get (T.counters c) "worker.items");
  (* Every span closed on the domain that opened it, with a sane
     domain-local depth, and timestamps stayed strictly orderable. *)
  let spans = T.spans c in
  List.iter
    (fun (s : TE.span) ->
      check_int (s.TE.sp_name ^ " depth") 0 s.TE.sp_depth;
      check_bool "nonneg duration" true (s.TE.sp_dur_us >= 0.0);
      match List.assoc_opt "domain" s.TE.sp_attrs with
      | Some (TE.Int _) -> ()
      | _ -> Alcotest.fail "span lost its domain attribute")
    spans;
  let domains_seen =
    List.sort_uniq compare (List.map (fun (s : TE.span) -> s.TE.sp_domain) spans)
  in
  check_int "spans came from every domain" domains (List.length domains_seen)

let test_concurrent_chrome_roundtrip () =
  let domains = 4 and spans_per_domain = 50 in
  let c =
    with_collector (fun c ->
        let work d () =
          for _ = 1 to spans_per_domain do
            T.with_span "shard" ~attrs:[ ("d", TE.Int d) ] (fun () -> ())
          done
        in
        let spawned =
          List.init (domains - 1) (fun d -> Domain.spawn (work (d + 1)))
        in
        work 0 ();
        List.iter Domain.join spawned;
        c)
  in
  let trace = parse_exn (Telemetry.Export.chrome_string c) in
  let events =
    match J.to_list_opt (member_exn "traceEvents" trace) with
    | Some l -> l
    | None -> Alcotest.fail "traceEvents not a list"
  in
  check_int "all spans exported" (domains * spans_per_domain)
    (List.length events);
  (* Spans land on one track per domain (tid = domain id). *)
  let tids =
    List.sort_uniq compare
      (List.map
         (fun j ->
           match J.to_number (member_exn "tid" j) with
           | Some t -> int_of_float t
           | None -> Alcotest.fail "tid not a number")
         events)
  in
  check_int "one track per domain" domains (List.length tids)

(* ------------------------------------------------------------------ *)
(* Driver integration: the journal agrees with the report.             *)

let sources =
  [ ("util",
     "func square(x) { return x * x; }\n\
      func poly(mode, x) {\n\
      \  if (mode == 0) { return x + 1; }\n\
      \  return x * 2;\n\
      }\n");
    ("main",
     "func main() {\n\
      \  var s = 0;\n\
      \  for (var i = 0; i < 100; i = i + 1) {\n\
      \    s = s + square(i) + poly(0, i);\n\
      \  }\n\
      \  print_int(s);\n\
      \  return 0;\n\
      }\n") ]

let compile_suite () =
  fst
    (Minic.Compile.compile_program
       (List.map
          (fun (m, s) -> Minic.Compile.source ~module_name:m s)
          sources))

let test_driver_journal_matches_report () =
  let program = compile_suite () in
  let profile = (Interp.train program).Interp.profile in
  let c = T.create () in
  T.install c;
  let result =
    Fun.protect ~finally:T.uninstall (fun () ->
        Hlo.Driver.run ~profile program)
  in
  let report = result.Hlo.Driver.report in
  check_int "journal inlines = report.inlines"
    report.Hlo.Report.inlines
    (T.journal_count c ~kind:TE.Inline ~accepted:true);
  check_int "journal clone creations = report.clones_created"
    report.Hlo.Report.clones_created
    (T.journal_count c ~kind:TE.Clone_create ~accepted:true);
  check_int "journal clone replacements = report.clone_replacements"
    report.Hlo.Report.clone_replacements
    (T.journal_count c ~kind:TE.Clone_replace ~accepted:true);
  check_int "journal deletions = report.deletions"
    report.Hlo.Report.deletions
    (T.journal_count c ~kind:TE.Delete ~accepted:true);
  (* The counters mirror the journal. *)
  let ctr name = Telemetry.Counters.get (T.counters c) name in
  check_float "performed counter" (float_of_int report.Hlo.Report.inlines)
    (ctr "hlo.inline.performed");
  check_float "deletions counter" (float_of_int report.Hlo.Report.deletions)
    (ctr "hlo.deletions");
  (* Something actually happened, and the stage spans are present and
     nested under hlo.run. *)
  check_bool "some inlining happened" true (report.Hlo.Report.inlines > 0);
  let spans = T.spans c in
  let find name =
    match List.find_opt (fun (s : TE.span) -> s.TE.sp_name = name) spans with
    | Some s -> s
    | None -> Alcotest.fail ("missing span " ^ name)
  in
  let run_span = find "hlo.run" in
  check_int "hlo.run at top level" 0 run_span.TE.sp_depth;
  List.iter
    (fun name ->
      let s = find name in
      check_bool (name ^ " inside hlo.run") true
        (s.TE.sp_start_us >= run_span.TE.sp_start_us
        && span_end s <= span_end run_span))
    [ "hlo.clean"; "hlo.pass"; "hlo.clone"; "hlo.inline"; "hlo.prune" ];
  (* hlo.clone / hlo.inline sit inside some hlo.pass span. *)
  let passes =
    List.filter (fun (s : TE.span) -> s.TE.sp_name = "hlo.pass") spans
  in
  check_int "one pass span per pass run"
    report.Hlo.Report.passes_run (List.length passes);
  List.iter
    (fun (s : TE.span) ->
      if s.TE.sp_name = "hlo.clone" || s.TE.sp_name = "hlo.inline" then
        check_bool (s.TE.sp_name ^ " inside a pass") true
          (List.exists
             (fun (p : TE.span) ->
               s.TE.sp_start_us >= p.TE.sp_start_us
               && span_end s <= span_end p)
             passes))
    spans

(* A run with telemetry disabled behaves identically (the collector is
   pure observation). *)
let test_telemetry_is_pure_observation () =
  let program = compile_suite () in
  let profile = (Interp.train program).Interp.profile in
  let plain = Hlo.Driver.run ~profile program in
  let c = T.create () in
  T.install c;
  let traced =
    Fun.protect ~finally:T.uninstall (fun () ->
        Hlo.Driver.run ~profile program)
  in
  check_int "same inlines" plain.Hlo.Driver.report.Hlo.Report.inlines
    traced.Hlo.Driver.report.Hlo.Report.inlines;
  check_string "same output" (Interp.run plain.Hlo.Driver.program).Interp.output
    (Interp.run traced.Hlo.Driver.program).Interp.output

(* Generous ceiling on the disabled fast path: a million no-op events
   must be effectively instant (they are one branch each). *)
let test_disabled_cost_guard () =
  check_bool "no ambient collector" false (T.enabled ());
  let t0 = Telemetry.Clock.now_us () in
  for _ = 1 to 1_000_000 do
    T.count "guard" 1
  done;
  let elapsed_us = Telemetry.Clock.now_us () -. t0 in
  check_bool
    (Printf.sprintf "1M disabled events in %.0fus (< 500ms)" elapsed_us)
    true
    (elapsed_us < 500_000.0)

let () =
  Alcotest.run "telemetry"
    [ ("spans",
       [ Alcotest.test_case "nesting and monotonicity" `Quick test_span_nesting;
         Alcotest.test_case "exception safety" `Quick
           test_span_survives_exception;
         Alcotest.test_case "clock monotonic" `Quick test_clock_monotonic ]);
      ("counters",
       [ Alcotest.test_case "arithmetic" `Quick test_counters;
         Alcotest.test_case "ambient" `Quick test_ambient_counters ]);
      ("json",
       [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
         Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage ]);
      ("export",
       [ Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
         Alcotest.test_case "chrome round-trip" `Quick test_chrome_roundtrip ]);
      ("concurrency",
       [ Alcotest.test_case "no lost events across domains" `Quick
           test_concurrent_no_lost_events;
         Alcotest.test_case "chrome round-trip under domains" `Quick
           test_concurrent_chrome_roundtrip ]);
      ("integration",
       [ Alcotest.test_case "journal matches report" `Quick
           test_driver_journal_matches_report;
         Alcotest.test_case "pure observation" `Quick
           test_telemetry_is_pure_observation;
         Alcotest.test_case "disabled cost guard" `Quick
           test_disabled_cost_guard ]) ]
