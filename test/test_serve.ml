(* The serving subsystem suite.

   Covers the hlod wire protocol (framing is fail-safe: malformed,
   oversized and truncated frames are values), admission control (the
   Σ size² budget as a serving resource, FIFO, structured rejects),
   the content-addressed artifact store (memory + disk, corruption is
   a miss), the compile service (bit-identity with the in-process
   pipeline, cache/coalescing semantics, shutdown draining), the
   socket server end to end, and the cross-request caches under
   concurrent use. *)

module P = Serve.Protocol
module J = Telemetry.Json
module U = Ucode.Types

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let unique =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !n)

let temp_dir prefix =
  let dir = unique prefix in
  Unix.mkdir dir 0o755;
  dir

(* ------------------------------------------------------------------ *)
(* Sample programs.                                                    *)

let util_src =
  "func square(x) { return x * x; }\n\
   func poly(mode, x) {\n\
  \  if (mode == 0) { return x + 1; }\n\
  \  return x * 2;\n\
   }\n"

let main_src =
  "func main() {\n\
  \  var s = 0;\n\
  \  for (var i = 0; i < 50; i = i + 1) {\n\
  \    s = s + square(i) + poly(0, i);\n\
  \  }\n\
  \  print_int(s);\n\
  \  return 0;\n\
   }\n"

let sample_modules = [ ("main", main_src); ("util", util_src) ]

let full_options =
  { P.default_options with
    P.co_stats = true; co_dump_ir = true; co_dump_journal = true }

(* ------------------------------------------------------------------ *)
(* Protocol framing.                                                   *)

(* Push raw bytes through a file so we exercise the real channel
   paths. *)
let with_bytes bytes f =
  let path = unique "frame" in
  Out_channel.with_open_bin path (fun oc -> output_string oc bytes);
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with _ -> ())
    (fun () -> In_channel.with_open_bin path f)

let frame_result = function
  | Ok payload -> "ok:" ^ payload
  | Error e -> P.frame_error_to_string e

let test_frame_roundtrip () =
  let path = unique "frame" in
  let payload = "{\"op\":\"ping\"}" in
  Out_channel.with_open_bin path (fun oc ->
      P.write_frame oc payload;
      P.write_frame oc "");
  let a, b, c =
    In_channel.with_open_bin path (fun ic ->
        let a = P.read_frame ic in
        let b = P.read_frame ic in
        let c = P.read_frame ic in
        (a, b, c))
  in
  Sys.remove path;
  check_string "first frame" ("ok:" ^ payload) (frame_result a);
  check_string "empty frame" "ok:" (frame_result b);
  check_string "clean EOF" "connection closed" (frame_result c)

let test_frame_failures () =
  with_bytes "" (fun ic ->
      check_bool "empty stream is Closed" true (P.read_frame ic = Error P.Closed));
  with_bytes "hlod1 12" (fun ic ->
      check_bool "EOF inside header is Truncated" true
        (P.read_frame ic = Error P.Truncated));
  with_bytes "hlod1 100\nshort" (fun ic ->
      check_bool "EOF inside payload is Truncated" true
        (P.read_frame ic = Error P.Truncated));
  with_bytes "hlod9 4\nabcd" (fun ic ->
      match P.read_frame ic with
      | Error (P.Malformed _) -> ()
      | r -> Alcotest.failf "bad magic: %s" (frame_result r));
  with_bytes "hlod1 many\n" (fun ic ->
      match P.read_frame ic with
      | Error (P.Malformed _) -> ()
      | r -> Alcotest.failf "unparsable length: %s" (frame_result r));
  with_bytes "hlod1 -3\n" (fun ic ->
      match P.read_frame ic with
      | Error (P.Malformed _) -> ()
      | r -> Alcotest.failf "negative length: %s" (frame_result r));
  with_bytes (String.make 200 'x') (fun ic ->
      match P.read_frame ic with
      | Error (P.Malformed _) -> ()
      | r -> Alcotest.failf "unbounded header: %s" (frame_result r));
  with_bytes "hlod1 2048\n" (fun ic ->
      match P.read_frame ~max_bytes:1024 ic with
      | Error (P.Oversized { announced = 2048; limit = 1024 }) -> ()
      | r -> Alcotest.failf "oversized: %s" (frame_result r))

let test_message_roundtrip () =
  let reqs =
    [ P.Ping; P.Stats; P.Shutdown;
      P.Compile { modules = sample_modules; options = full_options };
      P.Compile
        { modules = [ ("m", "func main() { return 0; }") ];
          options =
            { P.default_options with
              P.co_max_ops = Some 3; co_runner = "none"; co_scope = "base" } } ]
  in
  List.iter
    (fun req ->
      match P.request_of_json (P.request_to_json req) with
      | Ok req' -> check_bool "request round-trip" true (req = req')
      | Error msg -> Alcotest.fail msg)
    reqs;
  let resps =
    [ P.Pong; P.Shutting_down;
      P.Compiled
        { outputs = [ ("diag", ""); ("ir", "routine main\n") ];
          cache = "miss"; key = "abc"; queued = true; elapsed_us = 12.5 };
      P.Failed
        { kind = "trap"; reason = "trap in main: boom";
          outputs = [ ("report", "[hlo]\n") ] };
      P.Rejected
        { P.rj_kind = "queue_full"; rj_cost = 3.0; rj_limit = 2.0;
          rj_reason = "no" };
      P.Stats_reply (J.Assoc [ ("x", J.Int 1) ]) ]
  in
  List.iter
    (fun resp ->
      match P.response_of_json (P.response_to_json resp) with
      | Ok resp' -> check_bool "response round-trip" true (resp = resp')
      | Error msg -> Alcotest.fail msg)
    resps;
  (match P.request_of_json (J.Assoc [ ("op", J.String "compile") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "compile without modules must not decode");
  match
    P.request_of_json
      (P.request_to_json
         (P.Compile
            { modules = sample_modules;
              options = { full_options with P.co_scope = "cp" } }))
  with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* Admission control.                                                  *)

module Adm = Serve.Admission

let test_admission_budgets () =
  let a = Adm.create ~server_budget:100.0 ~request_budget:10.0 ~queue_limit:4 in
  (match Adm.admit a ~cost:11.0 with
  | Error r ->
    check_string "over request budget" "request_over_budget" r.P.rj_kind
  | Ok _ -> Alcotest.fail "must reject over-request-budget");
  let a2 = Adm.create ~server_budget:8.0 ~request_budget:100.0 ~queue_limit:4 in
  (match Adm.admit a2 ~cost:9.0 with
  | Error r ->
    check_string "bigger than the whole pool" "request_over_budget" r.P.rj_kind
  | Ok _ -> Alcotest.fail "must reject bigger-than-pool");
  match Adm.admit a ~cost:10.0 with
  | Error _ -> Alcotest.fail "fitting request must be admitted"
  | Ok tk ->
    check_bool "no queueing when capacity is free" false tk.Adm.tk_queued;
    Adm.release a tk;
    let sn = Adm.snapshot a in
    check_int "admitted" 1 sn.Adm.sn_admitted;
    check_bool "capacity returned" true (sn.Adm.sn_in_use = 0.0)

let test_admission_fifo_queue () =
  let a = Adm.create ~server_budget:10.0 ~request_budget:10.0 ~queue_limit:4 in
  let first =
    match Adm.admit a ~cost:8.0 with
    | Ok tk -> tk
    | Error _ -> Alcotest.fail "first admit"
  in
  let order = ref [] in
  let order_lock = Mutex.create () in
  let waiter label cost =
    Thread.create
      (fun () ->
        match Adm.admit a ~cost with
        | Ok tk ->
          Mutex.lock order_lock;
          order := label :: !order;
          Mutex.unlock order_lock;
          Adm.release a tk
        | Error _ -> ())
      ()
  in
  (* B arrives first and is big; C is small and arrives second.  FIFO
     means C must not jump the queue even though it would fit now. *)
  let tb = waiter "B" 8.0 in
  let rec wait_waiting n =
    if n = 0 then Alcotest.fail "B never queued"
    else if (Adm.snapshot a).Adm.sn_waiting < 1 then (
      Thread.delay 0.005;
      wait_waiting (n - 1))
  in
  wait_waiting 400;
  let tc = waiter "C" 1.0 in
  Thread.delay 0.05;
  check_string "C waits behind B" "" (String.concat "," !order);
  Adm.release a first;
  Thread.join tb;
  Thread.join tc;
  check_string "grant order is arrival order" "C,B" (String.concat "," !order);
  let sn = Adm.snapshot a in
  check_int "both eventually admitted" 3 sn.Adm.sn_admitted;
  check_bool "queue accounted" true (sn.Adm.sn_queued >= 1)

let test_admission_queue_full_and_close () =
  let a = Adm.create ~server_budget:10.0 ~request_budget:10.0 ~queue_limit:0 in
  let tk =
    match Adm.admit a ~cost:10.0 with
    | Ok tk -> tk
    | Error _ -> Alcotest.fail "admit"
  in
  (match Adm.admit a ~cost:1.0 with
  | Error r -> check_string "queue full" "queue_full" r.P.rj_kind
  | Ok _ -> Alcotest.fail "queue_limit 0 must reject a busy pool");
  Adm.close a;
  (match Adm.admit a ~cost:1.0 with
  | Error r -> check_string "closed" "shutting_down" r.P.rj_kind
  | Ok _ -> Alcotest.fail "closed admission must reject");
  Adm.release a tk

let test_admission_cost_model () =
  let m n = [ ("m", String.make n 'x') ] in
  let c1 = Adm.cost_of_modules (m 1600) in
  let c2 = Adm.cost_of_modules (m 3200) in
  check_bool "cost is superlinear in module size" true (c2 > 2.0 *. c1);
  check_bool "two small modules cost less than one double module" true
    (Adm.cost_of_modules [ ("a", String.make 1600 'x');
                           ("b", String.make 1600 'x') ]
     < c2)

(* ------------------------------------------------------------------ *)
(* Artifact store.                                                     *)

module Art = Serve.Artifacts

let test_artifacts_memory () =
  let t = Art.create () in
  let k = Art.key ~modules:sample_modules ~options_canon:"canon" in
  let k2 = Art.key ~modules:sample_modules ~options_canon:"other" in
  check_bool "options change the key" true (k <> k2);
  check_bool "miss before add" true (Art.find t k = None);
  Art.add t k [ ("ir", "text") ];
  (match Art.find t k with
  | Some ([ ("ir", "text") ], Art.Memory) -> ()
  | _ -> Alcotest.fail "memory hit expected");
  let sn = Art.snapshot t in
  check_int "entries" 1 sn.Art.sn_entries;
  check_int "one miss one hit" 1 sn.Art.sn_mem_hits;
  check_int "insertions" 1 sn.Art.sn_insertions

let test_artifacts_disk_and_corruption () =
  let dir = temp_dir "hlod-art" in
  let outputs = [ ("diag", ""); ("ir", "routine main\n"); ("journal", "") ] in
  let k = Art.key ~modules:sample_modules ~options_canon:"canon" in
  let t1 = Art.create ~dir () in
  Art.add t1 k outputs;
  (* A fresh store over the same directory promotes from disk. *)
  let t2 = Art.create ~dir () in
  (match Art.find t2 k with
  | Some (got, Art.Disk) -> check_bool "payload round-trips" true (got = outputs)
  | _ -> Alcotest.fail "disk hit expected");
  (match Art.find t2 k with
  | Some (_, Art.Memory) -> ()
  | _ -> Alcotest.fail "promoted to memory after the disk hit");
  (* Corrupt the artifact file: a fresh store must treat it as a miss,
     not crash and not serve garbage. *)
  let path = Filename.concat dir (k ^ ".hart") in
  Out_channel.with_open_bin path (fun oc -> output_string oc "garbage");
  let t3 = Art.create ~dir () in
  check_bool "corruption is a miss" true (Art.find t3 k = None);
  let sn = Art.snapshot t3 in
  check_bool "corruption is counted" true (sn.Art.sn_disk_errors >= 1)

let test_artifacts_memory_lru () =
  let t = Art.create ~cap:2 () in
  let key canon = Art.key ~modules:sample_modules ~options_canon:canon in
  let k1 = key "one" and k2 = key "two" and k3 = key "three" in
  Art.add t k1 [ ("ir", "1") ];
  Art.add t k2 [ ("ir", "2") ];
  (* Touch k1 so k2 becomes the least recently used... *)
  check_bool "k1 resident" true (Art.find t k1 <> None);
  Art.add t k3 [ ("ir", "3") ];
  (* ...and the third insertion evicts exactly it. *)
  check_bool "k2 evicted" true (Art.find t k2 = None);
  check_bool "k1 survives" true (Art.find t k1 <> None);
  check_bool "k3 survives" true (Art.find t k3 <> None);
  let sn = Art.snapshot t in
  check_int "resident entries" 2 sn.Art.sn_entries;
  check_int "one eviction" 1 sn.Art.sn_evictions;
  check_bool "cap must be positive" true
    (match Art.create ~cap:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_artifacts_disk_eviction () =
  let dir = temp_dir "hlod-art-cap" in
  let t = Art.create ~dir ~cap:2 () in
  let key canon = Art.key ~modules:sample_modules ~options_canon:canon in
  let k1 = key "one" and k2 = key "two" and k3 = key "three" in
  let path k = Filename.concat dir (k ^ ".hart") in
  Art.add t k1 [ ("ir", "1") ];
  Art.add t k2 [ ("ir", "2") ];
  (* Age k1 far below k2, then overflow the tier. *)
  Unix.utimes (path k1) 1000.0 1000.0;
  Art.add t k3 [ ("ir", "3") ];
  check_bool "oldest artifact file evicted" false (Sys.file_exists (path k1));
  check_bool "newer artifact kept" true (Sys.file_exists (path k2));
  check_bool "just-written artifact kept" true (Sys.file_exists (path k3));
  check_int "disk eviction counted" 1 (Art.snapshot t).Art.sn_disk_evictions;
  (* A disk hit refreshes the file's timestamp so the LRU sees it. *)
  Unix.utimes (path k2) 1000.0 1000.0;
  let t2 = Art.create ~dir ~cap:2 () in
  check_bool "disk hit" true (Art.find t2 k2 <> None);
  check_bool "hit refreshed the mtime" true
    ((Unix.stat (path k2)).Unix.st_mtime > 1000.0)

(* ------------------------------------------------------------------ *)
(* The compile service.                                                *)

module S = Serve.Service

let service_config ?artifact_dir ?(max_frame = P.default_max_frame) () =
  { S.jobs = 1; server_budget = 1.0e9; request_budget = 1.0e9;
    queue_limit = 16; artifact_dir; artifact_cap = None; summary_cache = None;
    max_frame }

let compile_req ?(modules = sample_modules) options =
  P.Compile { modules; options }

(* The in-process pipeline, exactly as `hloc` runs it, rendered through
   the shared [Serve.Render] — the reference the daemon must match
   byte for byte. *)
let inline_pipeline modules (o : P.compile_options) =
  let sources =
    List.map
      (fun (name, text) -> Minic.Compile.source ~module_name:name text)
      modules
  in
  let program, diags = Minic.Compile.compile_program ~main:o.P.co_main sources in
  let scope =
    match o.P.co_scope with
    | "base" -> Hlo.Config.Base
    | "c" -> Hlo.Config.C
    | "p" -> Hlo.Config.P
    | _ -> Hlo.Config.CP
  in
  let config =
    Hlo.Config.with_scope
      { Hlo.Config.default with
        Hlo.Config.budget_percent = o.P.co_budget; pass_limit = o.P.co_passes;
        enable_inlining = o.P.co_inline; enable_cloning = o.P.co_clone;
        max_operations = o.P.co_max_ops }
      scope
  in
  let prev = Telemetry.Collector.active () in
  let c = Telemetry.Collector.create () in
  Telemetry.Collector.install c;
  Fun.protect
    ~finally:(fun () ->
      match prev with
      | Some p -> Telemetry.Collector.install p
      | None -> Telemetry.Collector.uninstall ())
  @@ fun () ->
  let pieces = ref [ ("diag", Serve.Render.diag diags) ] in
  let emit name text = pieces := (name, text) :: !pieces in
  let profile =
    if config.Hlo.Config.use_profile then begin
      let r = Interp.train program in
      if o.P.co_stats then emit "train" (Serve.Render.train_line r);
      r.Interp.profile
    end
    else Ucode.Profile.empty
  in
  if o.P.co_dump_profile then emit "profile" (Serve.Render.profile profile);
  let result = Hlo.Driver.run ~config ~profile program in
  let optimized = result.Hlo.Driver.program in
  if o.P.co_stats then
    emit "report" (Serve.Render.report_line result.Hlo.Driver.report);
  if o.P.co_dump_ir then emit "ir" (Serve.Render.ir optimized);
  if o.P.co_dump_asm then emit "asm" (Serve.Render.asm optimized);
  if o.P.co_dump_journal then
    emit "journal" (Serve.Render.journal (Telemetry.Collector.decisions c));
  (match o.P.co_runner with
  | "none" -> ()
  | "interp" ->
    let r = Interp.run optimized in
    emit "run_output" r.Interp.output;
    if o.P.co_stats then emit "run_stats" (Serve.Render.interp_stats_line r)
  | _ ->
    let r = Machine.Sim.run_program optimized in
    emit "run_output" r.Machine.Sim.output;
    if o.P.co_stats then emit "run_stats" (Serve.Render.sim_stats_line r));
  List.rev !pieces

type compiled = {
  outputs : (string * string) list;
  cache : string;
  key : string;
}

let expect_compiled = function
  | P.Compiled { outputs; cache; key; _ } -> { outputs; cache; key }
  | P.Failed { reason; _ } -> Alcotest.failf "compile failed: %s" reason
  | P.Rejected r -> Alcotest.failf "rejected: %s" r.P.rj_reason
  | _ -> Alcotest.fail "unexpected response"

let show_outputs outputs =
  String.concat ";" (List.map (fun (ch, text) ->
      Printf.sprintf "%s:%d" ch (String.length text)) outputs)

let check_outputs msg expected got =
  check_string (msg ^ " (shape)") (show_outputs expected) (show_outputs got);
  List.iter2
    (fun (ch, etext) (_, gtext) -> check_string (msg ^ " " ^ ch) etext gtext)
    expected got

let test_service_matches_inline () =
  let svc = S.create (service_config ()) in
  let resp = S.handle svc (compile_req full_options) in
  let c = expect_compiled resp in
  check_string "first compile is a miss" "miss" c.cache;
  check_outputs "service = inline pipeline"
    (inline_pipeline sample_modules full_options)
    c.outputs

let test_service_cache_and_selection () =
  let svc = S.create (service_config ()) in
  let c1 = expect_compiled (S.handle svc (compile_req full_options)) in
  check_string "miss" "miss" c1.cache;
  let c2 = expect_compiled (S.handle svc (compile_req full_options)) in
  check_string "identical request hits" "hit" c2.cache;
  check_string "same key" c1.key c2.key;
  check_bool "identical bytes" true (c1.outputs = c2.outputs);
  (* Selection flags don't change the key — a quieter request for the
     same compile is served from the same artifact, fewer pieces. *)
  let quiet =
    { full_options with
      P.co_stats = false; co_dump_ir = false; co_dump_journal = false }
  in
  let c3 = expect_compiled (S.handle svc (compile_req quiet)) in
  check_string "selection flags share the artifact" c1.key c3.key;
  check_string "quiet request still a hit" "hit" c3.cache;
  check_string "only diag and run output remain" "diag;run_output"
    (String.concat ";" (List.map fst c3.outputs));
  check_bool "quiet outputs are a sub-sequence" true
    (List.for_all (fun p -> List.mem p c1.outputs) c3.outputs);
  (* A real option change recompiles under a different key. *)
  let other = { full_options with P.co_scope = "base" } in
  let c4 = expect_compiled (S.handle svc (compile_req other)) in
  check_bool "scope changes the key" true (c4.key <> c1.key);
  check_string "and misses" "miss" c4.cache

(* A policy rides the request and lands in the cache key: tuned and
   default compiles of the same sources never alias, equal policies
   coalesce, and garbage is rejected before any compile work. *)
let test_service_policy () =
  let svc = S.create (service_config ()) in
  let default = expect_compiled (S.handle svc (compile_req full_options)) in
  let tuned_policy =
    Policy.to_string
      { Policy.default with Policy.budget_percent = 15.0; pass_limit = 1 }
  in
  let tuned = { full_options with P.co_policy = Some tuned_policy } in
  let c1 = expect_compiled (S.handle svc (compile_req tuned)) in
  check_bool "policy changes the key" true (c1.key <> default.key);
  check_string "tuned compile is a miss" "miss" c1.cache;
  let c2 = expect_compiled (S.handle svc (compile_req tuned)) in
  check_string "same policy hits" "hit" c2.cache;
  check_bool "identical bytes" true (c1.outputs = c2.outputs);
  (* The policy really is applied: with the paper-default knobs sent
     explicitly as a policy, the output matches the no-policy bytes. *)
  let explicit_default =
    { full_options with P.co_policy = Some (Policy.to_string Policy.default) }
  in
  let c3 = expect_compiled (S.handle svc (compile_req explicit_default)) in
  check_bool "explicit default = implicit default bytes" true
    (c3.outputs = default.outputs);
  match
    S.handle svc
      (compile_req { full_options with P.co_policy = Some "nonsense" })
  with
  | P.Failed { kind; _ } -> check_string "bad policy kind" "bad_request" kind
  | _ -> Alcotest.fail "expected Failed on a bad policy"

(* The inline mode rides the request like a policy does: absent on the
   wire it defaults to "whole" (old clients keep working and keep their
   cache keys), unknown names are rejected at decode time, and each
   mode lands in the artifact key so whole/region/demand compiles of
   the same sources never alias. *)
let test_service_inline_mode () =
  (match
     P.request_of_json
       (J.Assoc
          [ ("op", J.String "compile");
            ( "modules",
              J.List
                [ J.Assoc
                    [ ("name", J.String "m");
                      ("source", J.String "func main() { return 0; }") ] ] ) ])
   with
  | Ok (P.Compile { options; _ }) ->
    check_string "wire default is whole" "whole" options.P.co_inline_mode
  | Ok _ -> Alcotest.fail "unexpected request"
  | Error msg -> Alcotest.fail msg);
  (match
     P.request_of_json
       (P.request_to_json
          (P.Compile
             { modules = sample_modules;
               options = { full_options with P.co_inline_mode = "eager" } }))
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown inline mode must not decode");
  let region_opts = { full_options with P.co_inline_mode = "region" } in
  (match
     P.request_of_json
       (P.request_to_json
          (P.Compile { modules = sample_modules; options = region_opts }))
   with
  | Ok (P.Compile { options; _ }) ->
    check_string "region round-trips" "region" options.P.co_inline_mode
  | _ -> Alcotest.fail "region request must decode");
  let svc = S.create (service_config ()) in
  let whole = expect_compiled (S.handle svc (compile_req full_options)) in
  let region = expect_compiled (S.handle svc (compile_req region_opts)) in
  check_bool "mode changes the key" true (region.key <> whole.key);
  check_string "region compile is a miss" "miss" region.cache;
  let again = expect_compiled (S.handle svc (compile_req region_opts)) in
  check_string "same mode hits" "hit" again.cache;
  let demand =
    expect_compiled
      (S.handle svc
         (compile_req { full_options with P.co_inline_mode = "demand" }))
  in
  check_bool "demand distinct from both" true
    (demand.key <> whole.key && demand.key <> region.key)

let test_service_failure_parity () =
  let svc = S.create (service_config ()) in
  let bad = [ ("main", "func main( { return }") ] in
  (match S.handle svc (compile_req ~modules:bad full_options) with
  | P.Failed { kind; reason; outputs } ->
    check_string "kind" "compile_error" kind;
    check_string "reason as hloc prints it" "compilation failed" reason;
    (match outputs with
    | [ ("diag", text) ] ->
      check_bool "diagnostics captured" true (String.length text > 0)
    | _ -> Alcotest.fail "expected only the diag piece")
  | _ -> Alcotest.fail "expected Failed");
  (* Failures are not cached: a corrected module under the same name
     compiles fine, and re-sending the bad one still fails. *)
  match S.handle svc (compile_req ~modules:bad full_options) with
  | P.Failed _ -> ()
  | _ -> Alcotest.fail "still Failed on retry"

let test_service_admission_reject () =
  let cfg = { (service_config ()) with S.request_budget = 1.0 } in
  let svc = S.create cfg in
  match S.handle svc (compile_req full_options) with
  | P.Rejected r ->
    check_string "structured reason" "request_over_budget" r.P.rj_kind;
    check_bool "cost reported" true (r.P.rj_cost > r.P.rj_limit)
  | _ -> Alcotest.fail "tiny request budget must reject"

let test_service_stop_rejects () =
  let svc = S.create (service_config ()) in
  S.stop svc;
  S.drain svc;
  (match S.handle svc (compile_req full_options) with
  | P.Rejected r -> check_string "shutting down" "shutting_down" r.P.rj_kind
  | _ -> Alcotest.fail "stopped service must reject compiles");
  (* Stats and ping still answer during shutdown. *)
  match S.handle svc P.Ping with
  | P.Pong -> ()
  | _ -> Alcotest.fail "ping must still answer"

let test_service_disk_artifacts () =
  let dir = temp_dir "hlod-svc-art" in
  let svc1 = S.create (service_config ~artifact_dir:dir ()) in
  let c1 = expect_compiled (S.handle svc1 (compile_req full_options)) in
  (* A fresh service (daemon restart) serves the same request from
     disk, byte-identical, without compiling. *)
  let svc2 = S.create (service_config ~artifact_dir:dir ()) in
  let c2 = expect_compiled (S.handle svc2 (compile_req full_options)) in
  check_string "served from disk" "disk" c2.cache;
  check_bool "bytes survive the restart" true (c1.outputs = c2.outputs)

(* Every benchmark in the suite, served by the daemon service, must
   produce exactly the in-process pipeline's bytes.  [--stats
   --dump-ir --dump-journal] covers the report, the IR and the
   decision journal — the full bit-identity contract. *)
let test_service_identity_all_workloads () =
  let svc = S.create (service_config ()) in
  List.iter
    (fun (b : Workloads.Suite.benchmark) ->
      let config_src =
        Printf.sprintf "public global input_size = %d;\n" b.b_train_size
      in
      let modules = ("config", config_src) :: b.b_sources in
      let c = expect_compiled (S.handle svc (compile_req ~modules full_options)) in
      check_outputs (b.b_name ^ " daemon = in-process")
        (inline_pipeline modules full_options)
        c.outputs)
    Workloads.Suite.all

(* ------------------------------------------------------------------ *)
(* The socket server.                                                  *)

module Server = Serve.Server
module Client = Serve.Client

let with_server ?(config = service_config ()) f =
  let socket = unique "hlod-test" ^ ".sock" in
  let server = Server.start ~socket config in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () -> f server socket)

let roundtrip_ok client req =
  match Client.roundtrip client req with
  | Ok resp -> resp
  | Error msg -> Alcotest.fail msg

let with_client socket f =
  match Client.connect socket with
  | Error msg -> Alcotest.fail msg
  | Ok client ->
    Fun.protect ~finally:(fun () -> Client.close client) (fun () -> f client)

let stats_int path1 path2 json =
  match Option.bind (J.member path1 json) (J.member path2) with
  | Some (J.Int n) -> n
  | _ -> Alcotest.failf "stats field %s.%s missing" path1 path2

let server_stats socket =
  with_client socket @@ fun client ->
  match roundtrip_ok client P.Stats with
  | P.Stats_reply json -> json
  | _ -> Alcotest.fail "expected Stats_reply"

let test_socket_two_clients_one_compile () =
  with_server @@ fun _server socket ->
  check_bool "probe finds the daemon" true (Client.probe socket);
  let c1 =
    with_client socket @@ fun client ->
    expect_compiled (roundtrip_ok client (compile_req full_options))
  in
  check_string "first client compiles" "miss" c1.cache;
  let c2 =
    with_client socket @@ fun client ->
    expect_compiled (roundtrip_ok client (compile_req full_options))
  in
  check_string "second client is served from cache" "hit" c2.cache;
  check_bool "bit-identical across clients" true (c1.outputs = c2.outputs);
  let stats = server_stats socket in
  check_int "exactly one compilation in the artifact store" 1
    (stats_int "artifacts" "insertions" stats);
  check_int "cache hits consume no admission capacity" 1
    (stats_int "admission" "admitted" stats)

let test_socket_malformed_frame_keeps_serving () =
  with_server @@ fun _server socket ->
  (* Raw connection: send garbage where a frame should be. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  output_string oc "this is not a frame\n";
  flush oc;
  (match P.read_response ic with
  | Ok (P.Failed { kind = "bad_request"; _ }) -> ()
  | Ok _ -> Alcotest.fail "expected a bad_request failure"
  | Error e -> Alcotest.failf "expected a reply, got %s" (P.frame_error_to_string e));
  (try Unix.close fd with _ -> ());
  (* The server must still serve. *)
  check_bool "server survives garbage" true (Client.probe socket)

let test_socket_oversized_frame_keeps_serving () =
  let config = { (service_config ()) with S.max_frame = 1024 } in
  with_server ~config @@ fun _server socket ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  output_string oc "hlod1 1000000\n";
  flush oc;
  (match P.read_response ic with
  | Ok (P.Failed { kind = "bad_request"; reason; _ }) ->
    check_bool "reason mentions the limit" true
      (String.length reason > 0)
  | _ -> Alcotest.fail "expected a bad_request failure");
  (try Unix.close fd with _ -> ());
  check_bool "server survives an oversized announcement" true
    (Client.probe socket)

let test_socket_disconnect_mid_request_keeps_serving () =
  with_server @@ fun _server socket ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  let oc = Unix.out_channel_of_descr fd in
  (* Announce a 100-byte payload, deliver 10, vanish. *)
  output_string oc "hlod1 100\nonly this.";
  flush oc;
  Unix.close fd;
  Thread.delay 0.05;
  check_bool "server survives a mid-request disconnect" true
    (Client.probe socket);
  let c =
    with_client socket @@ fun client ->
    expect_compiled (roundtrip_ok client (compile_req full_options))
  in
  check_string "and still compiles" "miss" c.cache

let test_socket_graceful_shutdown_drains () =
  with_server @@ fun server socket ->
  (* Client A starts a compile; once it is admitted, client B asks for
     shutdown.  A's response must still arrive complete. *)
  let result_a = ref None in
  let ta =
    Thread.create
      (fun () ->
        with_client socket @@ fun client ->
        result_a := Some (Client.roundtrip client (compile_req full_options)))
      ()
  in
  let rec wait_admitted n =
    if n = 0 then Alcotest.fail "client A never admitted"
    else if
      stats_int "admission" "admitted"
        (S.stats_json (Server.service server))
      < 1
    then (
      Thread.delay 0.005;
      wait_admitted (n - 1))
  in
  wait_admitted 1000;
  (with_client socket @@ fun client ->
   match roundtrip_ok client P.Shutdown with
   | P.Shutting_down -> ()
   | _ -> Alcotest.fail "expected Shutting_down");
  Thread.join ta;
  (match !result_a with
  | Some (Ok (P.Compiled _)) -> ()
  | Some (Ok (P.Rejected r)) ->
    Alcotest.failf "admitted request was rejected: %s" r.P.rj_reason
  | Some (Ok _) -> Alcotest.fail "unexpected response for client A"
  | Some (Error msg) -> Alcotest.failf "client A lost its response: %s" msg
  | None -> Alcotest.fail "client A never finished");
  Server.wait server;
  check_bool "listener is closed after the drain" false (Client.probe socket)

(* ------------------------------------------------------------------ *)
(* Cross-request caches under concurrency.                             *)

let compiled_sample () =
  fst
    (Minic.Compile.compile_program ~main:"main"
       (List.map
          (fun (name, text) -> Minic.Compile.source ~module_name:name text)
          sample_modules))

let test_summary_cache_concurrent () =
  Hlo.Summary_cache.clear ();
  let program = compiled_sample () in
  let routines = Array.of_list program.U.p_routines in
  let expected =
    Array.map (fun r -> Ucode.Size.routine_size r) routines
  in
  let worker () =
    for _ = 1 to 25 do
      Array.iteri
        (fun i r ->
          if Hlo.Summary_cache.size r <> expected.(i) then
            failwith "summary mismatch")
        routines
    done;
    true
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  let ok = List.for_all Domain.join domains in
  check_bool "all domains saw correct summaries" true ok;
  let st = Hlo.Summary_cache.stats () in
  check_bool "cache actually hit" true (st.Hlo.Summary_cache.hits > 0);
  check_bool "entries bounded by distinct bodies" true
    (st.Hlo.Summary_cache.entries <= Array.length routines)

let find_routine program name =
  match U.find_routine program name with
  | Some r -> r
  | None -> Alcotest.failf "no routine %s" name

let clone_spec =
  { Hlo.Clone_spec.cs_callee = "poly";
    cs_bindings = [ (0, Hlo.Clone_spec.Bconst 0L) ] }

(* Clone_db instantiation must be indistinguishable from direct
   materialization — same routine, same site map — for any fresh_site
   sequence. *)
let test_clone_db_matches_direct () =
  Hlo.Clone_db.clear ();
  let program = compiled_sample () in
  let callee = find_routine program "poly" in
  let counter_from start =
    let n = ref start in
    fun () ->
      incr n;
      !n
  in
  let direct =
    Hlo.Clone_spec.make_clone ~callee ~clone_name:"poly$c1"
      ~fresh_site:(counter_from 1000) clone_spec
  in
  let via_db_cold =
    Hlo.Clone_db.make_clone ~callee ~clone_name:"poly$c1"
      ~fresh_site:(counter_from 1000) clone_spec
  in
  check_bool "cold instantiation = direct" true (direct = via_db_cold);
  let via_db_warm =
    Hlo.Clone_db.make_clone ~callee ~clone_name:"poly$c1"
      ~fresh_site:(counter_from 1000) clone_spec
  in
  check_bool "warm instantiation = direct" true (direct = via_db_warm);
  let st = Hlo.Clone_db.stats () in
  check_bool "second call hit the template" true (st.Hlo.Clone_db.hits >= 1);
  (* Different name / site sequence: still exact. *)
  let direct2 =
    Hlo.Clone_spec.make_clone ~callee ~clone_name:"poly$c2"
      ~fresh_site:(counter_from 7) clone_spec
  in
  let via_db2 =
    Hlo.Clone_db.make_clone ~callee ~clone_name:"poly$c2"
      ~fresh_site:(counter_from 7) clone_spec
  in
  check_bool "renamed instantiation = direct" true (direct2 = via_db2)

let test_clone_db_concurrent () =
  Hlo.Clone_db.clear ();
  let program = compiled_sample () in
  let callee = find_routine program "poly" in
  let make start =
    let n = ref start in
    Hlo.Clone_db.make_clone ~callee ~clone_name:"poly$cc"
      ~fresh_site:(fun () ->
        incr n;
        !n)
      clone_spec
  in
  let reference = make 500 in
  let worker () =
    for _ = 1 to 50 do
      if make 500 <> reference then failwith "clone drift"
    done;
    true
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  check_bool "concurrent instantiations all identical" true
    (List.for_all Domain.join domains)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [ ("protocol",
       [ Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
         Alcotest.test_case "frame failures are values" `Quick
           test_frame_failures;
         Alcotest.test_case "message JSON round-trip" `Quick
           test_message_roundtrip ]);
      ("admission",
       [ Alcotest.test_case "budgets" `Quick test_admission_budgets;
         Alcotest.test_case "FIFO queue" `Quick test_admission_fifo_queue;
         Alcotest.test_case "queue_full and close" `Quick
           test_admission_queue_full_and_close;
         Alcotest.test_case "quadratic cost model" `Quick
           test_admission_cost_model ]);
      ("artifacts",
       [ Alcotest.test_case "memory store" `Quick test_artifacts_memory;
         Alcotest.test_case "memory LRU eviction" `Quick
           test_artifacts_memory_lru;
         Alcotest.test_case "disk eviction" `Quick
           test_artifacts_disk_eviction;
         Alcotest.test_case "disk store and corruption" `Quick
           test_artifacts_disk_and_corruption ]);
      ("service",
       [ Alcotest.test_case "matches the in-process pipeline" `Quick
           test_service_matches_inline;
         Alcotest.test_case "cache and piece selection" `Quick
           test_service_cache_and_selection;
         Alcotest.test_case "policy in the cache key" `Quick
           test_service_policy;
         Alcotest.test_case "inline mode in the cache key" `Quick
           test_service_inline_mode;
         Alcotest.test_case "failure parity" `Quick
           test_service_failure_parity;
         Alcotest.test_case "admission reject" `Quick
           test_service_admission_reject;
         Alcotest.test_case "stop rejects compiles" `Quick
           test_service_stop_rejects;
         Alcotest.test_case "disk artifacts survive restart" `Quick
           test_service_disk_artifacts;
         Alcotest.test_case "bit-identity on all 14 workloads" `Slow
           test_service_identity_all_workloads ]);
      ("socket",
       [ Alcotest.test_case "two clients, one compile" `Quick
           test_socket_two_clients_one_compile;
         Alcotest.test_case "malformed frame keeps serving" `Quick
           test_socket_malformed_frame_keeps_serving;
         Alcotest.test_case "oversized frame keeps serving" `Quick
           test_socket_oversized_frame_keeps_serving;
         Alcotest.test_case "mid-request disconnect keeps serving" `Quick
           test_socket_disconnect_mid_request_keeps_serving;
         Alcotest.test_case "graceful shutdown drains" `Quick
           test_socket_graceful_shutdown_drains ]);
      ("caches",
       [ Alcotest.test_case "summary cache across domains" `Quick
           test_summary_cache_concurrent;
         Alcotest.test_case "clone db = direct materialization" `Quick
           test_clone_db_matches_direct;
         Alcotest.test_case "clone db across domains" `Quick
           test_clone_db_concurrent ]) ]
