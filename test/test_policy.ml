(* Tests for the policy subsystem (lib/policy) and the hlo_tune search
   engine (lib/experiments/policy_search):

   - canonical text codec: round trips, strictness, corruption never
     crashes and never yields an invalid policy (qcheck);
   - persistence: store container and plain-text forms both load, a
     truncated container is an error, not a policy;
   - the search space: samples and mutants always validate (qcheck);
   - Pareto dominance and front;
   - tuner determinism: same seed, same parameters ⇒ same front and
     winner, and the winner never loses to the 1997 default;
   - the oracle gate: with a chaos bug armed, evaluation must reject
     the transformed program instead of scoring it. *)

let qcount =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> int_of_string s
  | None -> 100

(* ------------------------------------------------------------------ *)
(* Codec.                                                              *)

let test_codec_default () =
  let text = Policy.to_string Policy.default in
  (match Policy.of_string text with
  | Ok p ->
    Alcotest.(check bool) "default round trips" true (Policy.equal p Policy.default)
  | Error msg -> Alcotest.failf "default text rejected: %s" msg);
  Alcotest.(check bool)
    "hash is stable" true
    (String.equal (Policy.hash Policy.default) (Policy.hash Policy.default))

let test_codec_strict () =
  let text = Policy.to_string Policy.default in
  let lines = String.split_on_char '\n' text in
  let reject name t =
    match Policy.of_string t with
    | Ok _ -> Alcotest.failf "%s: accepted" name
    | Error _ -> ()
  in
  reject "empty" "";
  reject "missing line" (String.concat "\n" (List.tl lines));
  reject "duplicated line" (String.concat "\n" (List.hd lines :: lines));
  reject "unknown key" (text ^ "\nwarp_factor 9");
  reject "junk value" "budget_percent banana";
  (* Valid syntax, invalid semantics: must hit validate, not crash. *)
  reject "bad staging"
    (String.concat "\n"
       (List.map
          (fun line ->
            if String.length line >= 8 && String.sub line 0 8 = "staging "
            then "staging 2.0,1.0"
            else line)
          lines))

let prop_sample_round_trips =
  QCheck.Test.make ~count:qcount ~name:"random policies round trip"
    QCheck.(small_int)
    (fun seed ->
      let rng = Random.State.make [| 0xC0DEC; seed |] in
      let p = Policy.Space.sample rng in
      match Policy.of_string (Policy.to_string p) with
      | Ok q -> Policy.equal p q && String.equal (Policy.hash p) (Policy.hash q)
      | Error msg -> QCheck.Test.fail_report msg)

let prop_corruption_safe =
  QCheck.Test.make ~count:qcount ~name:"corrupted text never yields an invalid policy"
    QCheck.(small_int)
    (fun seed ->
      let rng = Random.State.make [| 0xBAD; seed |] in
      let text = Policy.to_string (Policy.Space.sample rng) in
      let bytes = Bytes.of_string text in
      let pos = Random.State.int rng (Bytes.length bytes) in
      Bytes.set bytes pos (Char.chr (Random.State.int rng 256));
      match Policy.of_string (Bytes.to_string bytes) with
      | Error _ -> true
      | Ok p -> (
        (* The flip may be a no-op or still-parseable; then the result
           must at least be a valid policy. *)
        match Policy.validate p with
        | Ok () -> true
        | Error msg -> QCheck.Test.fail_report ("invalid policy accepted: " ^ msg)))

(* ------------------------------------------------------------------ *)
(* Persistence.                                                        *)

let temp_path () =
  let path = Filename.temp_file "policy" ".policy" in
  Sys.remove path;
  path

let cleanup path = if Sys.file_exists path then Sys.remove path

let test_persistence () =
  let path = temp_path () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  Alcotest.(check bool)
    "missing file is None" true
    (Policy.load ~path = Ok None);
  (match Policy.save ~path Policy.default with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "save: %s" msg);
  (match Policy.load ~path with
  | Ok (Some p) ->
    Alcotest.(check bool) "container round trips" true (Policy.equal p Policy.default)
  | Ok None -> Alcotest.fail "saved policy not found"
  | Error msg -> Alcotest.failf "load: %s" msg);
  (* Plain canonical text (hloc --dump-policy output) loads too. *)
  let oc = open_out path in
  output_string oc (Policy.to_string Policy.default);
  close_out oc;
  (match Policy.load ~path with
  | Ok (Some p) ->
    Alcotest.(check bool) "plain text loads" true (Policy.equal p Policy.default)
  | Ok None -> Alcotest.fail "plain text not found"
  | Error msg -> Alcotest.failf "plain text load: %s" msg);
  (* Neither a container nor policy text: an error, not a policy. *)
  let oc = open_out path in
  output_string oc "this is not a policy\n";
  close_out oc;
  match Policy.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

let test_truncated_container () =
  let path = temp_path () in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  (match Policy.save ~path Policy.default with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "save: %s" msg);
  let full = In_channel.with_open_bin path In_channel.input_all in
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full - 7));
  close_out oc;
  match Policy.load ~path with
  | Error _ -> ()
  | Ok None -> Alcotest.fail "truncated container reported as missing"
  | Ok (Some _) -> Alcotest.fail "truncated container yielded a policy"

(* ------------------------------------------------------------------ *)
(* Search space.                                                       *)

let prop_space_valid =
  QCheck.Test.make ~count:qcount ~name:"samples and mutants always validate"
    QCheck.(small_int)
    (fun seed ->
      let rng = Random.State.make [| 0x5face; seed |] in
      let p = Policy.Space.sample rng in
      let q = Policy.Space.mutate rng p in
      match (Policy.validate p, Policy.validate q) with
      | Ok (), Ok () -> true
      | Error msg, _ -> QCheck.Test.fail_report ("sample: " ^ msg)
      | _, Error msg -> QCheck.Test.fail_report ("mutate: " ^ msg))

let test_space_deterministic () =
  let draw seed =
    let rng = Random.State.make [| seed |] in
    let p = Policy.Space.sample rng in
    Policy.to_string (Policy.Space.mutate rng p)
  in
  Alcotest.(check string) "same seed, same draws" (draw 11) (draw 11);
  Alcotest.(check bool)
    "params documented" true
    (List.length Policy.Space.params >= 8)

(* ------------------------------------------------------------------ *)
(* Pareto.                                                             *)

let test_pareto () =
  let pt cycles size cost = { Policy.Pareto.cycles; size; cost } in
  let d = Policy.Pareto.dominates in
  Alcotest.(check bool) "strictly better" true (d (pt 1. 1. 1.) (pt 2. 2. 2.));
  Alcotest.(check bool) "better on one axis" true (d (pt 1. 2. 2.) (pt 2. 2. 2.));
  Alcotest.(check bool) "equal dominates nothing" false (d (pt 1. 1. 1.) (pt 1. 1. 1.));
  Alcotest.(check bool) "trade-off" false (d (pt 1. 3. 1.) (pt 2. 2. 2.));
  let front =
    Policy.Pareto.front
      [ ("a", pt 1. 3. 1.); ("b", pt 2. 2. 2.); ("c", pt 3. 3. 3.);
        ("dup", pt 1. 3. 1.); ("d", pt 3. 1. 3.) ]
  in
  Alcotest.(check (list string))
    "non-dominated, input order, dups dropped" [ "a"; "b"; "d" ]
    (List.map fst front)

(* ------------------------------------------------------------------ *)
(* The tuner.                                                          *)

let smoke_run () =
  Experiments.Policy_search.run ~seed:42 ~samples:3 ~rounds:1 ~mutations:2
    ~stale_rounds:0 ~input:Workloads.Suite.Train
    ~benchmarks:[ "026.compress" ] ()

let test_tuner_deterministic () =
  let fingerprint (t : Experiments.Policy_search.t) =
    String.concat "|"
      (List.concat_map
         (fun (cr : Experiments.Policy_search.class_result) ->
           Policy.hash cr.cr_winner
           :: List.map (fun (p, _) -> Policy.hash p) cr.cr_front)
         t.t_classes)
  in
  let a = smoke_run () in
  let b = smoke_run () in
  Alcotest.(check string) "same seed, same front and winner" (fingerprint a)
    (fingerprint b)

let test_tuner_winner_never_worse () =
  let t = smoke_run () in
  List.iter
    (fun (cr : Experiments.Policy_search.class_result) ->
      Alcotest.(check bool)
        "winner cycles <= default" true
        (cr.cr_winner_point.Policy.Pareto.cycles
         <= cr.cr_default.Policy.Pareto.cycles);
      Alcotest.(check bool)
        "winner size <= default" true
        (cr.cr_winner_point.Policy.Pareto.size
         <= cr.cr_default.Policy.Pareto.size))
    t.Experiments.Policy_search.t_classes

let test_oracle_gate () =
  let ctx =
    Experiments.Policy_search.prepare ~input:Workloads.Suite.Train
      (Workloads.Suite.find "026.compress")
  in
  (* Sanity: the gate is open for an honest compiler. *)
  (match Experiments.Policy_search.evaluate ctx Policy.default with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "honest evaluation rejected: %s" msg);
  (* With a seeded miscompilation armed, the same evaluation must be
     rejected by the oracle — a plausible-but-wrong candidate can never
     be scored. *)
  match
    Hlo.Chaos.with_bug Hlo.Chaos.Inline_lost_retval (fun () ->
        Experiments.Policy_search.evaluate ctx Policy.default)
  with
  | Ok _ -> Alcotest.fail "miscompiled candidate was scored"
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "rejected by the oracle (%s)" msg)
      true
      (String.length msg >= 6 && String.sub msg 0 6 = "oracle")

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "policy"
    [ ( "codec",
        [ Alcotest.test_case "default round trip" `Quick test_codec_default;
          Alcotest.test_case "strictness" `Quick test_codec_strict;
          to_alcotest prop_sample_round_trips;
          to_alcotest prop_corruption_safe ] );
      ( "persistence",
        [ Alcotest.test_case "save/load forms" `Quick test_persistence;
          Alcotest.test_case "truncated container" `Quick
            test_truncated_container ] );
      ( "space",
        [ to_alcotest prop_space_valid;
          Alcotest.test_case "deterministic draws" `Quick
            test_space_deterministic ] );
      ("pareto", [ Alcotest.test_case "dominance and front" `Quick test_pareto ]);
      ( "tuner",
        [ Alcotest.test_case "deterministic" `Quick test_tuner_deterministic;
          Alcotest.test_case "winner never worse" `Quick
            test_tuner_winner_never_worse;
          Alcotest.test_case "oracle gate" `Quick test_oracle_gate ] ) ]
