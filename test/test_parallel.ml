(* The parallel determinism suite.

   The contract under test: compiling with any `--jobs N` produces
   results *bit-identical* to the sequential compile — the final IR,
   the HLO report, and the optimizer decision journal (timestamps
   excluded; they are wall-clock).  Plus unit coverage for the domain
   pool itself and for the content-hashed summary cache, including
   warm-vs-cold equivalence and the on-disk round-trip. *)

module U = Ucode.Types
module Pool = Parallel.Pool

let jobs_levels = [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Pool unit tests.                                                    *)

let test_pool_matches_sequential () =
  let p = Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  let xs = Array.init 257 (fun i -> i) in
  let f x = (x * 7919) mod 1001 in
  Alcotest.(check (array int))
    "map_array_in = Array.map" (Array.map f xs)
    (Pool.map_array_in p f xs);
  Alcotest.(check (list int))
    "map_list_in = List.map"
    (List.map f (Array.to_list xs))
    (Pool.map_list_in p f (Array.to_list xs))

let test_pool_priority_is_cosmetic () =
  let p = Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  let xs = Array.init 100 (fun i -> i) in
  let f x = x * x in
  (* Reverse priority: highest index scheduled first.  Results must be
     in input order regardless. *)
  let priority = Array.init 100 (fun i -> -i) in
  Alcotest.(check (array int))
    "priority changes scheduling only" (Array.map f xs)
    (Pool.map_array_in p ~priority f xs)

exception Boom of int

let test_pool_first_error_by_index () =
  let p = Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  (* Items 3 and 17 fail; whatever finishes first, the raised error
     must be item 3's — exactly what sequential Array.map would do. *)
  let xs = Array.init 64 (fun i -> i) in
  let f x = if x = 3 || x = 17 then raise (Boom x) else x in
  (* Schedule item 17 first to tempt a completion-order implementation
     into raising the wrong one. *)
  let priority = Array.map (fun x -> if x = 17 then -1 else x) xs in
  match Pool.map_array_in p ~priority f xs with
  | _ -> Alcotest.fail "expected an exception"
  | exception Boom n -> Alcotest.(check int) "first failure by index" 3 n

let test_pool_nested_maps () =
  let p = Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  (* A parallel map whose items themselves map in parallel: the inner
     maps must degrade to inline execution (Pool.in_worker) instead of
     deadlocking on the shared queue. *)
  let outer = Array.init 8 (fun i -> i) in
  let f i =
    Array.fold_left ( + ) 0
      (Pool.map_array_in p (fun j -> (i * 10) + j) (Array.init 10 Fun.id))
  in
  Alcotest.(check (array int))
    "nested map" (Array.map f outer)
    (Pool.map_array_in p f outer)

let test_pool_ambient_degree () =
  let saved = Pool.get_jobs () in
  Fun.protect ~finally:(fun () -> Pool.set_jobs saved) @@ fun () ->
  Pool.set_jobs 3;
  Alcotest.(check int) "set/get" 3 (Pool.get_jobs ());
  Alcotest.(check int) "pool degree" 3 (Pool.jobs (Pool.the ()));
  Pool.set_jobs 0;
  Alcotest.(check int) "clamped to 1" 1 (Pool.get_jobs ())

(* The warm pool: consecutive maps at an unchanged degree must not
   spawn domains; resizing spawns or joins only the delta. *)
let test_pool_resize_reuse () =
  let p = Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  Alcotest.(check int) "create spawns jobs - 1" 3 (Pool.spawned p);
  let xs = Array.init 100 Fun.id in
  ignore (Pool.map_array_in p (fun x -> x + 1) xs : int array);
  let s1 = Pool.spawned p in
  ignore (Pool.map_array_in p (fun x -> x * 2) xs : int array);
  ignore (Pool.map_array_in p (fun x -> x - 3) xs : int array);
  Alcotest.(check int) "no spawn between maps at the same degree" s1
    (Pool.spawned p);
  Pool.resize p 2;
  Alcotest.(check int) "shrinking spawns nothing" s1 (Pool.spawned p);
  Alcotest.(check int) "degree shrunk" 2 (Pool.jobs p);
  ignore (Pool.map_array_in p (fun x -> x + 7) xs : int array);
  Alcotest.(check int) "still warm after shrink" s1 (Pool.spawned p);
  Pool.resize p 4;
  Alcotest.(check int) "growing spawns only the delta" (s1 + 2)
    (Pool.spawned p);
  Alcotest.(check (array int))
    "map correct after resizes"
    (Array.map succ xs)
    (Pool.map_array_in p succ xs)

(* Many items failing concurrently on every executor: the error raised
   must still be the lowest-index one, run after run.  chunk_size 1
   makes every failure its own stealable task, and the reversed
   priority schedules the *highest* failing index first. *)
let test_pool_concurrent_failures () =
  let p = Pool.create ~jobs:8 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  for round = 1 to 20 do
    let n = 128 in
    let xs = Array.init n Fun.id in
    let first = 5 + (round mod 7) in
    let priority = Array.init n (fun i -> -i) in
    let f x = if x >= first then raise (Boom x) else x in
    match Pool.map_array_in p ~priority ~chunk_size:1 f xs with
    | _ -> Alcotest.fail "expected an exception"
    | exception Boom got ->
      Alcotest.(check int) "lowest failing index wins" first got
  done

(* Property: the steal path never changes results.  Random per-item
   busy-work (so deques drain unevenly and executors steal), random
   priorities, random chunk sizes, at every jobs level. *)
let prop_steal_determinism =
  QCheck.Test.make ~count:25
    ~name:"map_array_in = Array.map under random durations/priorities/chunks"
    QCheck.(
      triple (int_range 1 150) (int_range 0 1_000_000)
        (option (int_range 1 40)))
    (fun (n, seed, chunk_size) ->
      let state = ref (Int64.of_int (seed + 1)) in
      let next bound =
        state :=
          Int64.add
            (Int64.mul !state 6364136223846793005L)
            1442695040888963407L;
        Int64.to_int
          (Int64.rem (Int64.shift_right_logical !state 33) (Int64.of_int bound))
      in
      let work = Array.init n (fun _ -> next 300) in
      let priority = Array.init n (fun _ -> next 1000 - 500) in
      let f i =
        let acc = ref 0 in
        for k = 1 to work.(i) do
          acc := !acc + ((k * (i + 1)) mod 97)
        done;
        (i * 7919) + (!acc mod 13)
      in
      let xs = Array.init n Fun.id in
      let expected = Array.map f xs in
      List.iter
        (fun jobs ->
          let p = Pool.create ~jobs in
          Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
          let got = Pool.map_array_in p ~priority ?chunk_size f xs in
          if got <> expected then
            QCheck.Test.fail_report
              (Printf.sprintf
                 "results differ at jobs=%d (n=%d chunk_size=%s)" jobs n
                 (match chunk_size with
                 | None -> "auto"
                 | Some c -> string_of_int c)))
        jobs_levels;
      true)

(* ------------------------------------------------------------------ *)
(* One full compile, instrumented.                                     *)

(* The decision journal with wall-clock stripped: everything the
   optimizer decided, in order, without the one field that legitimately
   differs between runs. *)
type journal_entry = {
  j_kind : string;
  j_verdict : string;
  j_reason : string;
  j_subject : string;
  j_context : string;
  j_site : int;
  j_score : float;
  j_pass : int;
}

let journal_of collector =
  List.map
    (fun (d : Telemetry.Event.decision) ->
      { j_kind = Telemetry.Event.kind_name d.Telemetry.Event.d_kind;
        j_verdict = Telemetry.Event.verdict_name d.Telemetry.Event.d_verdict;
        j_reason =
          (match d.Telemetry.Event.d_verdict with
          | Telemetry.Event.Accepted -> ""
          | Telemetry.Event.Rejected r -> r);
        j_subject = d.Telemetry.Event.d_subject;
        j_context = d.Telemetry.Event.d_context;
        j_site = d.Telemetry.Event.d_site;
        j_score = d.Telemetry.Event.d_score;
        j_pass = d.Telemetry.Event.d_pass })
    (Telemetry.Collector.decisions collector)

type run_result = {
  rr_ir : string;          (* pretty-printed final program *)
  rr_report : string;      (* pretty-printed Report.t *)
  rr_journal : journal_entry list;
}

(* Compile sources → train (if the config wants profile) → HLO, with
   [jobs] ambient domains and a private collector, returning everything
   the determinism contract covers.  [profile] is computed by the
   caller once per program: the training interpreter is sequential and
   deterministic, so sharing it just avoids redundant work. *)
let run_once ~jobs ~(config : Hlo.Config.t) ~profile sources : run_result =
  Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_jobs 1) @@ fun () ->
  let collector = Telemetry.Collector.create () in
  Telemetry.Collector.install collector;
  Fun.protect ~finally:Telemetry.Collector.uninstall @@ fun () ->
  let program, _diags = Minic.Compile.compile_program sources in
  (* Validate after the parallel front end stage, every time. *)
  (match Ucode.Validate.check_program program with
  | [] -> ()
  | errors ->
    Alcotest.fail
      ("front end produced invalid IR:\n"
      ^ Ucode.Validate.errors_to_string errors));
  let res = Hlo.Driver.run ~config ~profile program in
  (* config.validate is on for every generated config, so the driver
     also validated after each clone/inline/optimize stage. *)
  { rr_ir = Ucode.Pp.program_to_string res.Hlo.Driver.program;
    rr_report = Fmt.str "%a" Hlo.Report.pp res.Hlo.Driver.report;
    rr_journal = journal_of collector }

let profile_for ~(config : Hlo.Config.t) sources =
  if config.Hlo.Config.use_profile then begin
    let program, _ = Minic.Compile.compile_program sources in
    match
      Interp.run
        ~config:{ Prog_gen.interp_config with Interp.profile = true }
        program
    with
    | r -> r.Interp.profile
    | exception Interp.Trap _ -> Ucode.Profile.empty
  end
  else Ucode.Profile.empty

let check_identical ~what ~jobs (reference : run_result) (got : run_result) =
  let tag s = Printf.sprintf "%s: %s at jobs=%d vs jobs=1" what s jobs in
  Alcotest.(check string) (tag "IR") reference.rr_ir got.rr_ir;
  Alcotest.(check string) (tag "report") reference.rr_report got.rr_report;
  if reference.rr_journal <> got.rr_journal then begin
    let show j =
      String.concat "\n"
        (List.map
           (fun e ->
             Printf.sprintf "%s %s%s %s<-%s site=%d score=%.6g pass=%d"
               e.j_kind e.j_verdict
               (if e.j_reason = "" then "" else "(" ^ e.j_reason ^ ")")
               e.j_subject e.j_context e.j_site e.j_score e.j_pass)
           j)
    in
    Alcotest.(check string)
      (tag "decision journal")
      (show reference.rr_journal) (show got.rr_journal)
  end

(* ------------------------------------------------------------------ *)
(* Property: random programs, random configs, jobs 1..8.               *)

let prop_differential_determinism =
  QCheck.Test.make ~count:25
    ~name:"jobs 1/2/4/8 produce identical IR, report and journal"
    (QCheck.pair Prog_gen.arbitrary_sources (QCheck.make Prog_gen.gen_hlo_config))
    (fun (sources, config) ->
      let profile = profile_for ~config sources in
      let reference = run_once ~jobs:1 ~config ~profile sources in
      List.iter
        (fun jobs ->
          let got = run_once ~jobs ~config ~profile sources in
          check_identical ~what:"random program" ~jobs reference got)
        (List.filter (fun j -> j > 1) jobs_levels);
      true)

(* Property: a warm summary cache changes nothing but the hit counter. *)
let prop_warm_cache_equals_cold =
  QCheck.Test.make ~count:25 ~name:"warm summary cache equals cold"
    (QCheck.pair Prog_gen.arbitrary_sources (QCheck.make Prog_gen.gen_hlo_config))
    (fun (sources, config) ->
      let profile = profile_for ~config sources in
      Hlo.Summary_cache.clear ();
      let cold = run_once ~jobs:1 ~config ~profile sources in
      let stats_cold = Hlo.Summary_cache.stats () in
      let warm = run_once ~jobs:1 ~config ~profile sources in
      let stats_warm = Hlo.Summary_cache.stats () in
      check_identical ~what:"warm vs cold" ~jobs:1 cold warm;
      (* The warm run must actually have been served by the cache: no
         new entries appeared (same program ⇒ same body hashes). *)
      if stats_warm.Hlo.Summary_cache.entries
         <> stats_cold.Hlo.Summary_cache.entries
      then
        QCheck.Test.fail_report
          (Printf.sprintf "warm run added entries: %d -> %d"
             stats_cold.Hlo.Summary_cache.entries
             stats_warm.Hlo.Summary_cache.entries);
      true)

(* ------------------------------------------------------------------ *)
(* The 14 paper workloads, swept across jobs levels.                   *)

let workload_case (b : Workloads.Suite.benchmark) =
  let name = Printf.sprintf "%s bit-identical at jobs 1/2/4/8" b.Workloads.Suite.b_name in
  ( name,
    `Slow,
    fun () ->
      let sources = Workloads.Suite.sources b ~input:Workloads.Suite.Train in
      let config = { Hlo.Config.default with Hlo.Config.validate = true } in
      let profile = profile_for ~config sources in
      let reference = run_once ~jobs:1 ~config ~profile sources in
      List.iter
        (fun jobs ->
          let got = run_once ~jobs ~config ~profile sources in
          check_identical ~what:b.Workloads.Suite.b_name ~jobs reference got)
        (List.filter (fun j -> j > 1) jobs_levels) )

(* ------------------------------------------------------------------ *)
(* Summary cache: hashing and the on-disk store.                       *)

let small_program () =
  Minic.Compile.compile_string
    "func helper(x) { for (var i = 0; i < 3; i = i + 1) { x = x + i; } \
     return x; } func main() { print_int(helper(4)); return 0; }"

let test_hash_ignores_identity () =
  let p = small_program () in
  let r = U.find_routine_exn p "helper" in
  let h = Ucode.Hash.routine_body_hash r in
  Alcotest.(check string)
    "renaming does not change the hash" h
    (Ucode.Hash.routine_body_hash { r with U.r_name = "other"; r_module = "m2" });
  Alcotest.(check string)
    "clone origin does not change the hash" h
    (Ucode.Hash.routine_body_hash { r with U.r_origin = U.Clone_of "helper" });
  (* Re-siting calls (what inlining copies do) keeps the hash... *)
  let resite (b : U.block) =
    { b with
      U.b_instrs =
        List.map
          (function
            | U.Call c -> U.Call { c with U.c_site = c.U.c_site + 1000 }
            | i -> i)
          b.U.b_instrs }
  in
  let p_main = U.find_routine_exn p "main" in
  Alcotest.(check string)
    "site ids do not change the hash"
    (Ucode.Hash.routine_body_hash p_main)
    (Ucode.Hash.routine_body_hash
       { p_main with U.r_blocks = List.map resite p_main.U.r_blocks });
  (* ...but touching an instruction does not. *)
  let bump_const (b : U.block) =
    { b with
      U.b_instrs =
        List.map
          (function
            | U.Const (d, k) -> U.Const (d, Int64.add k 1L)
            | i -> i)
          b.U.b_instrs }
  in
  let r' = { r with U.r_blocks = List.map bump_const r.U.r_blocks } in
  if Ucode.Hash.routine_body_hash r' = h then
    Alcotest.fail "changing a constant must change the hash"

let test_cache_roundtrip () =
  Hlo.Summary_cache.clear ();
  let p = small_program () in
  let before =
    List.map (fun r -> Hlo.Summary_cache.find r) p.U.p_routines
  in
  let entries = (Hlo.Summary_cache.stats ()).Hlo.Summary_cache.entries in
  let path = Filename.temp_file "summary_cache" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  (match Hlo.Summary_cache.save path with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Hlo.Summary_cache.clear ();
  (match Hlo.Summary_cache.load path with
  | Ok n -> Alcotest.(check int) "all entries loaded" entries n
  | Error msg -> Alcotest.fail msg);
  let after = List.map (fun r -> Hlo.Summary_cache.find r) p.U.p_routines in
  List.iter2
    (fun (b : Hlo.Summary_cache.entry) (a : Hlo.Summary_cache.entry) ->
      Alcotest.(check int) "size survives the round-trip"
        b.Hlo.Summary_cache.e_size a.Hlo.Summary_cache.e_size;
      Alcotest.(check (list int)) "cycles survive the round-trip"
        (U.Int_set.elements b.Hlo.Summary_cache.e_cycles)
        (U.Int_set.elements a.Hlo.Summary_cache.e_cycles))
    before after;
  let s = Hlo.Summary_cache.stats () in
  (* The post-load lookups must have been hits, not recomputations. *)
  Alcotest.(check int) "post-load lookups hit" (List.length p.U.p_routines)
    s.Hlo.Summary_cache.hits;
  Alcotest.(check int) "no recomputation after load" 0
    s.Hlo.Summary_cache.misses

let test_cache_agrees_with_direct_computation () =
  Hlo.Summary_cache.clear ();
  let p = small_program () in
  List.iter
    (fun r ->
      Alcotest.(check int) "cached size = Size.routine_size"
        (Ucode.Size.routine_size r)
        (Hlo.Summary_cache.size r);
      Alcotest.(check (list int)) "cached cycles = Summaries.blocks_in_cycles"
        (U.Int_set.elements (Hlo.Summaries.blocks_in_cycles r))
        (U.Int_set.elements (Hlo.Summary_cache.cycles r)))
    p.U.p_routines

let test_cache_rejects_garbage () =
  let path = Filename.temp_file "summary_cache" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  output_string oc "not a cache file\n";
  close_out oc;
  match Hlo.Summary_cache.load path with
  | Ok _ -> Alcotest.fail "expected a header error"
  | Error _ -> ()

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "deterministic map" `Quick
            test_pool_matches_sequential;
          Alcotest.test_case "priority is cosmetic" `Quick
            test_pool_priority_is_cosmetic;
          Alcotest.test_case "first error by index" `Quick
            test_pool_first_error_by_index;
          Alcotest.test_case "nested maps run inline" `Quick
            test_pool_nested_maps;
          Alcotest.test_case "ambient degree" `Quick test_pool_ambient_degree;
          Alcotest.test_case "resize reuses warm workers" `Quick
            test_pool_resize_reuse;
          Alcotest.test_case "concurrent failures: first by index" `Quick
            test_pool_concurrent_failures;
          to_alcotest prop_steal_determinism ] );
      ( "determinism",
        [ to_alcotest prop_differential_determinism;
          to_alcotest prop_warm_cache_equals_cold ] );
      ( "workloads",
        List.map workload_case Workloads.Suite.all );
      ( "summary_cache",
        [ Alcotest.test_case "hash ignores identity" `Quick
            test_hash_ignores_identity;
          Alcotest.test_case "disk round-trip" `Quick test_cache_roundtrip;
          Alcotest.test_case "agrees with direct computation" `Quick
            test_cache_agrees_with_direct_computation;
          Alcotest.test_case "rejects garbage files" `Quick
            test_cache_rejects_garbage ] ) ]
