(* Property-based tests (qcheck, registered as alcotest cases).

   The central tool is a generator of random — but always terminating
   and trap-free by construction — multi-module MiniC programs that
   print observable values.  Every transformation layer is then tested
   differentially:

   - the machine simulator agrees with the IR interpreter;
   - the scalar optimizer preserves interpreter output;
   - HLO at random scopes/budgets/operation caps preserves output and
     produces structurally valid IR;
   - each individual pass preserves output;
   - the profile database conserves call flow;
   - the cache model agrees with a naive reference LRU. *)

module U = Ucode.Types
module Gen = QCheck.Gen

(* The random program generator and the outcome helpers live in
   Prog_gen so the parallel determinism suite (test_parallel.ml) can
   reuse them. *)

let arbitrary_program = Prog_gen.arbitrary_program
let interp_config = Prog_gen.interp_config
let interp_outcome = Prog_gen.interp_outcome
let sim_outcome = Prog_gen.sim_outcome
let same_outcome = Prog_gen.same_outcome
let gen_hlo_config = Prog_gen.gen_hlo_config

(* ------------------------------------------------------------------ *)
(* Properties.                                                         *)

let count = 60  (* cases per property; each compiles and runs programs *)

let prop_sim_agrees_with_interp =
  QCheck.Test.make ~count ~name:"simulator agrees with interpreter"
    arbitrary_program (fun p -> same_outcome (interp_outcome p) (sim_outcome p))

let prop_optimizer_preserves =
  QCheck.Test.make ~count ~name:"optimizer preserves semantics"
    arbitrary_program (fun p ->
      let p' = Opt.Pipeline.optimize_program p in
      (match Ucode.Validate.check_program p' with
      | [] -> ()
      | errors ->
        QCheck.Test.fail_report (Ucode.Validate.errors_to_string errors));
      same_outcome (interp_outcome p) (interp_outcome p'))

let prop_each_pass_preserves =
  let passes =
    [ ("constprop", fun r -> fst (Opt.Constprop.run r));
      ("copyprop", fun r -> fst (Opt.Copyprop.run r));
      ("licm", fun r -> fst (Opt.Licm.run r));
      ("strength", fun r -> fst (Opt.Strength.run r));
      ("cse", fun r -> fst (Opt.Cse.run r));
      ("dce", fun r -> fst (Opt.Dce.run r));
      ("simplify", fun r -> fst (Opt.Simplify.run r)) ]
  in
  QCheck.Test.make ~count ~name:"every single pass preserves semantics"
    arbitrary_program (fun p ->
      let reference = interp_outcome p in
      List.for_all
        (fun (name, pass) ->
          let p' = { p with U.p_routines = List.map pass p.U.p_routines } in
          (match Ucode.Validate.check_program p' with
          | [] -> ()
          | errors ->
            QCheck.Test.fail_report
              (name ^ " broke validation:\n"
              ^ Ucode.Validate.errors_to_string errors));
          let out = interp_outcome p' in
          if same_outcome reference out then true
          else
            QCheck.Test.fail_report
              (Printf.sprintf "%s changed output:\n%s\nvs\n%s" name reference out))
        passes)

(* Training, profile handling, the driver run and the observable
   comparison all live in the semantic oracle now; the property just
   adds the operation-cap assertion on top. *)
let prop_hlo_preserves =
  QCheck.Test.make ~count ~name:"HLO preserves semantics at random configs"
    (QCheck.pair arbitrary_program (QCheck.make gen_hlo_config))
    (fun (p, config) ->
      let check = { Oracle.default_check with Oracle.ck_config = config } in
      let res = Oracle.check_transform ~interp_config check p in
      (match config.Hlo.Config.max_operations with
      | Some cap ->
        if Hlo.Report.total_operations res.Oracle.tr_driver.Hlo.Driver.report > cap
        then QCheck.Test.fail_report "operation cap exceeded"
      | None -> ());
      match res.Oracle.tr_verdict with
      | None -> true
      | Some (cls, detail) ->
        QCheck.Test.fail_report
          (Printf.sprintf "oracle mismatch [%s]: %s\n  pre:  %s\n  post: %s"
             cls detail
             (Oracle.outcome_to_string res.Oracle.tr_pre)
             (Oracle.outcome_to_string res.Oracle.tr_post)))

let prop_hlo_then_sim_agrees =
  QCheck.Test.make ~count:30 ~name:"HLO output runs identically on the machine"
    arbitrary_program (fun p ->
      let profile =
        match Interp.run ~config:{ interp_config with Interp.profile = true } p with
        | r -> r.Interp.profile
        | exception Interp.Trap _ -> Ucode.Profile.empty
      in
      let res = Hlo.Driver.run ~profile p in
      same_outcome (interp_outcome res.Hlo.Driver.program)
        (sim_outcome res.Hlo.Driver.program))

let prop_profile_conserves_calls =
  QCheck.Test.make ~count ~name:"profile site counts equal dynamic calls"
    arbitrary_program (fun p ->
      match Interp.run ~config:{ interp_config with Interp.profile = true } p with
      | exception Interp.Trap _ -> QCheck.assume_fail ()
      | r ->
        let prof = r.Interp.profile in
        (* Each routine's entry count must equal incoming direct site
           counts plus indirect target counts (plus 1 for main). *)
        let cg = Ucode.Callgraph.build p in
        List.for_all
          (fun (routine : U.routine) ->
            let entry = Ucode.Profile.entry_count prof routine in
            let direct =
              List.fold_left
                (fun acc (e : Ucode.Callgraph.edge) ->
                  match e.Ucode.Callgraph.e_callee with
                  | U.Direct _ ->
                    acc +. Ucode.Profile.site_count prof e.Ucode.Callgraph.e_site
                  | U.Indirect _ -> acc)
                0.0
                (Ucode.Callgraph.incoming cg routine.U.r_name)
            in
            let indirect =
              List.fold_left
                (fun acc (e : Ucode.Callgraph.edge) ->
                  match e.Ucode.Callgraph.e_callee with
                  | U.Indirect _ ->
                    acc
                    +. (List.assoc_opt routine.U.r_name
                          (Ucode.Profile.site_targets prof
                             e.Ucode.Callgraph.e_site)
                       |> Option.value ~default:0.0)
                  | U.Direct _ -> acc)
                0.0 cg.Ucode.Callgraph.cg_edges
            in
            let expected =
              direct +. indirect
              +. if routine.U.r_name = p.U.p_main then 1.0 else 0.0
            in
            Float.abs (expected -. entry) < 0.0001)
          p.U.p_routines)

let prop_copy_body_validates =
  QCheck.Test.make ~count ~name:"renamed copies remain well-formed"
    arbitrary_program (fun p ->
      List.for_all
        (fun (r : U.routine) ->
          let next = ref 10_000 in
          let fresh () = let s = !next in incr next; s in
          let copy =
            Ucode.Rename.copy_body r ~reg_base:100 ~label_base:50
              ~fresh_site:fresh
          in
          let as_routine =
            { r with
              U.r_blocks = copy.Ucode.Rename.cp_blocks;
              r_params = copy.Ucode.Rename.cp_params;
              r_next_reg = copy.Ucode.Rename.cp_next_reg;
              r_next_label = copy.Ucode.Rename.cp_next_label }
          in
          Ucode.Validate.check_routine as_routine = [])
        p.U.p_routines)

(* ------------------------------------------------------------------ *)
(* Cache model vs reference implementation.                            *)

(* Naive reference: per set, an LRU list of tags. *)
let reference_cache (cfg : Machine.Cache.config) (addrs : int list) :
    bool list =
  let sets = Array.make cfg.Machine.Cache.sets [] in
  List.map
    (fun addr ->
      let line = addr / cfg.Machine.Cache.line_words in
      let set = line mod cfg.Machine.Cache.sets in
      let tag = line / cfg.Machine.Cache.sets in
      let current = sets.(set) in
      let hit = List.mem tag current in
      let without = List.filter (fun t -> t <> tag) current in
      let updated = tag :: without in
      let updated =
        if List.length updated > cfg.Machine.Cache.assoc then
          List.filteri (fun i _ -> i < cfg.Machine.Cache.assoc) updated
        else updated
      in
      sets.(set) <- updated;
      hit)
    addrs

let gen_cache_case : (Machine.Cache.config * int list) Gen.t =
 fun st ->
  let cfg =
    { Machine.Cache.sets = 1 lsl Gen.int_range 0 4 st;
      assoc = Gen.int_range 1 4 st;
      line_words = 1 lsl Gen.int_range 0 3 st }
  in
  let n = Gen.int_range 1 200 st in
  let addrs = List.init n (fun _ -> Gen.int_range 0 512 st) in
  (cfg, addrs)

let prop_cache_matches_reference =
  QCheck.Test.make ~count:300 ~name:"cache model matches reference LRU"
    (QCheck.make gen_cache_case) (fun (cfg, addrs) ->
      let c = Machine.Cache.create cfg in
      let got = List.map (fun a -> Machine.Cache.access c a) addrs in
      let want = reference_cache cfg addrs in
      got = want
      && c.Machine.Cache.accesses = List.length addrs
      && c.Machine.Cache.misses
         = List.length (List.filter (fun h -> not h) want))

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "properties"
    [ ( "differential",
        [ to_alcotest prop_sim_agrees_with_interp;
          to_alcotest prop_optimizer_preserves;
          to_alcotest prop_each_pass_preserves;
          to_alcotest prop_hlo_preserves;
          to_alcotest prop_hlo_then_sim_agrees ] );
      ( "structure",
        [ to_alcotest prop_profile_conserves_calls;
          to_alcotest prop_copy_body_validates;
          to_alcotest prop_cache_matches_reference ] ) ]
