(* Random-program generation shared by the property suites
   (test_properties.ml, test_oracle.ml), the parallel determinism suite
   (test_parallel.ml) and the differential fuzzer (bin/hlo_fuzz).

   Programs are generated as a structured [shape] — a list of function
   records plus a main body — so qcheck can shrink them (drop
   statements, drop whole functions) before rendering to MiniC text.
   With the default {!tame_opts} programs are always terminating and
   trap-free by construction; {!wild_opts} additionally exercises
   indirect calls through function handles, direct calls with arity
   mismatches, trapping operations and deeper nesting. *)

module U = Ucode.Types
module Gen = QCheck.Gen

(* ------------------------------------------------------------------ *)
(* Feature switches.                                                   *)

type shape_opts = {
  so_indirect : bool;
      (** handle-typed locals ([var h2 = f0;]) called indirectly; the
          handle is used *only* in call position — printing or storing
          one would not survive transformation, since handles are
          per-run routine indices *)
  so_mismatch : bool;
      (** direct calls with one argument too many / too few (a warning;
          the convention pads with zeros or drops extras) *)
  so_traps : bool;
      (** unguarded division, unmasked array indexing, conditional
          [abort()], indirect calls with wrong arity *)
  so_nested : bool;  (** deeper statement nesting and bigger bodies *)
}

let tame_opts =
  { so_indirect = false; so_mismatch = false; so_traps = false;
    so_nested = false }

let wild_opts =
  { so_indirect = true; so_mismatch = true; so_traps = true;
    so_nested = true }

(* ------------------------------------------------------------------ *)
(* Shapes.                                                             *)

type fn = {
  fn_name : string;
  fn_static : bool;
  fn_params : string list;
  fn_body : string list;  (* statements *)
  fn_ret : string;        (* the return expression *)
}

type shape = {
  sh_funcs : fn list;     (* acyclic: each may only call earlier ones *)
  sh_main : string list;  (* main body statements *)
}

let render_fn f =
  Printf.sprintf "%s func %s(%s) { %s return %s; }"
    (if f.fn_static then "static" else "")
    f.fn_name
    (String.concat ", " f.fn_params)
    (String.concat " " f.fn_body)
    f.fn_ret

(* The library's globals are public so both modules touch them; main
   ends by printing the shared state, making most computation
   observable. *)
let render_shape (sh : shape) : Minic.Compile.source list =
  let lib =
    "public global ga[16];\npublic global gs;\npublic global gt = 3;\n"
    ^ String.concat "\n" (List.map render_fn sh.sh_funcs)
  in
  let main =
    Printf.sprintf
      "func main() { %s print_int(gs); print_int(gt); print_int(ga[3]); \
       return 0; }"
      (String.concat " " sh.sh_main)
  in
  [ Minic.Compile.source ~module_name:"lib" lib;
    Minic.Compile.source ~module_name:"app" main ]

(* ------------------------------------------------------------------ *)
(* Random generation.                                                  *)

(* State threaded through generation: a name supply. *)
type genv = {
  mutable next_local : int;
  funcs_below : (string * int) list;  (* callable (name, arity) *)
  mutable locals : string list;       (* value locals, in scope *)
  mutable handles : (string * int) list;
      (* handle locals (name, target arity) — call position only *)
}

(* Int64.min_int has no literal form (the lexer sees MINUS applied to
   an out-of-range magnitude, like C); spell it arithmetically. *)
let const_to_string k =
  if Int64.equal k Int64.min_int then "(0 - 9223372036854775807 - 1)"
  else Printf.sprintf "%Ld" k

let small_const =
  Gen.oneof
    [ Gen.map Int64.of_int (Gen.int_range (-100) 100);
      Gen.oneofl [ 0L; 1L; 2L; 7L; 255L; 65535L; -1L; Int64.max_int;
                   Int64.min_int ] ]

let rec gen_expr opts env depth st =
  let atom =
    Gen.oneof
      ([ Gen.map const_to_string small_const ]
      @ (if env.locals = [] then [] else [ Gen.oneofl env.locals ])
      @ [ Gen.return "gs"; Gen.return "gt" ])
  in
  if depth <= 0 then atom st
  else
    match Gen.int_range 0 9 st with
    | 0 | 1 ->
      Printf.sprintf "(%s %s %s)"
        (gen_expr opts env (depth - 1) st)
        (Gen.oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ] st)
        (gen_expr opts env (depth - 1) st)
    | 2 ->
      if opts.so_traps && Gen.int_range 0 4 st = 0 then
        (* Unguarded: traps whenever the divisor evaluates to zero. *)
        Printf.sprintf "(%s %s %s)"
          (gen_expr opts env (depth - 1) st)
          (Gen.oneofl [ "/"; "%" ] st)
          (gen_expr opts env (depth - 1) st)
      else
        (* Division with a guarded positive divisor. *)
        Printf.sprintf "(%s %s ((%s & 1023) + 1))"
          (gen_expr opts env (depth - 1) st)
          (Gen.oneofl [ "/"; "%" ] st)
          (gen_expr opts env (depth - 1) st)
    | 3 ->
      Printf.sprintf "(%s %s (%s & 15))"
        (gen_expr opts env (depth - 1) st)
        (Gen.oneofl [ "<<"; ">>" ] st)
        (gen_expr opts env (depth - 1) st)
    | 4 ->
      Printf.sprintf "(%s %s %s)"
        (gen_expr opts env (depth - 1) st)
        (Gen.oneofl [ "<"; "<="; ">"; ">="; "=="; "!=" ] st)
        (gen_expr opts env (depth - 1) st)
    | 5 ->
      Printf.sprintf "(%s %s %s)"
        (gen_expr opts env (depth - 1) st)
        (Gen.oneofl [ "&&"; "||" ] st)
        (gen_expr opts env (depth - 1) st)
    | 6 -> Printf.sprintf "(%s(%s))" (Gen.oneofl [ "-"; "!" ] st)
             (gen_expr opts env (depth - 1) st)
    | 7 ->
      if opts.so_traps && Gen.int_range 0 5 st = 0 then
        (* Unmasked: traps when the index leaves [0, 16). *)
        Printf.sprintf "ga[(%s)]" (gen_expr opts env (depth - 1) st)
      else Printf.sprintf "ga[(%s) & 15]" (gen_expr opts env (depth - 1) st)
    | 8 when env.funcs_below <> [] ->
      let name, arity = Gen.oneofl env.funcs_below st in
      let args =
        List.init arity (fun _ -> gen_expr opts env (depth - 1) st)
      in
      Printf.sprintf "%s(%s)" name (String.concat ", " args)
    | _ -> atom st

(* A direct-call argument list, possibly off by one in either
   direction when mismatches are enabled. *)
let gen_call_args opts env arity st =
  let n =
    if opts.so_mismatch then
      match Gen.int_range 0 3 st with
      | 0 -> arity + 1
      | 1 -> max 0 (arity - 1)
      | _ -> arity
    else arity
  in
  List.init n (fun _ -> gen_expr opts env 2 st)

let rec gen_stmts opts env ~depth ~fuel st : string list =
  if fuel <= 0 then []
  else
    let stmt =
      match Gen.int_range 0 (if opts.so_indirect then 12 else 9) st with
      | 0 | 1 ->
        let name = Printf.sprintf "t%d" env.next_local in
        env.next_local <- env.next_local + 1;
        let s = Printf.sprintf "var %s = %s;" name (gen_expr opts env 2 st) in
        env.locals <- name :: env.locals;
        [ s ]
      | 2 when env.locals <> [] ->
        [ Printf.sprintf "%s = %s;" (Gen.oneofl env.locals st)
            (gen_expr opts env 2 st) ]
      | 3 ->
        [ Printf.sprintf "%s = %s;" (Gen.oneofl [ "gs"; "gt" ] st)
            (gen_expr opts env 2 st) ]
      | 4 ->
        [ Printf.sprintf "ga[(%s) & 15] = %s;" (gen_expr opts env 1 st)
            (gen_expr opts env 2 st) ]
      | 5 when depth > 0 ->
        let saved = env.locals and saved_h = env.handles in
        let then_ = gen_stmts opts env ~depth:(depth - 1) ~fuel:(fuel / 2) st in
        env.locals <- saved;
        env.handles <- saved_h;
        let else_ = gen_stmts opts env ~depth:(depth - 1) ~fuel:(fuel / 2) st in
        env.locals <- saved;
        env.handles <- saved_h;
        [ Printf.sprintf "if (%s) { %s } else { %s }" (gen_expr opts env 2 st)
            (String.concat " " then_) (String.concat " " else_) ]
      | 6 when depth > 0 ->
        (* A loop bounded by construction; the body may break early.
           With [so_nested] the recursion depth below allows loops in
           loops in loops. *)
        let i = Printf.sprintf "i%d" env.next_local in
        env.next_local <- env.next_local + 1;
        let bound = Gen.int_range 1 5 st in
        let saved = env.locals and saved_h = env.handles in
        env.locals <- i :: env.locals;
        let body = gen_stmts opts env ~depth:(depth - 1) ~fuel:(fuel / 2) st in
        let break_ =
          if Gen.bool st then
            Printf.sprintf "if (%s) { break; }" (gen_expr opts env 1 st)
          else ""
        in
        env.locals <- saved;
        env.handles <- saved_h;
        [ Printf.sprintf "for (var %s = 0; %s < %d; %s = %s + 1) { %s %s }" i i
            bound i i
            (String.concat " " body)
            break_ ]
      | 7 -> [ Printf.sprintf "print_int(%s);" (gen_expr opts env 2 st) ]
      | 8 when env.funcs_below <> [] ->
        let name, arity = Gen.oneofl env.funcs_below st in
        let args = gen_call_args opts env arity st in
        [ Printf.sprintf "%s(%s);" name (String.concat ", " args) ]
      | 10 when env.funcs_below <> [] ->
        (* Take a function's address into a handle local.  The handle
           is only ever *called* (below); its numeric value is a
           per-run routine index, so printing or storing it would make
           the program's output transformation-dependent. *)
        let name, arity = Gen.oneofl env.funcs_below st in
        let h = Printf.sprintf "h%d" env.next_local in
        env.next_local <- env.next_local + 1;
        env.handles <- (h, arity) :: env.handles;
        [ Printf.sprintf "var %s = %s;" h name ]
      | 11 | 12 when env.handles <> [] ->
        let h, arity = Gen.oneofl env.handles st in
        let arity =
          (* Wrong arity through a handle traps at run time. *)
          if opts.so_traps && Gen.int_range 0 5 st = 0 then arity + 1
          else arity
        in
        let args = List.init arity (fun _ -> gen_expr opts env 2 st) in
        [ Printf.sprintf "gs = %s(%s);" h (String.concat ", " args) ]
      | 9 when opts.so_traps && Gen.int_range 0 3 st = 0 ->
        [ Printf.sprintf "if ((%s) == 77) { abort(); }"
            (gen_expr opts env 2 st) ]
      | _ -> [ Printf.sprintf "gt = gt + %s;" (gen_expr opts env 1 st) ]
    in
    stmt @ gen_stmts opts env ~depth ~fuel:(fuel - 1) st

(* One function definition; may only call [funcs_below] (acyclic call
   graph guarantees termination). *)
let gen_fn opts ~name ~funcs_below ~static st : fn =
  let arity = Gen.int_range 0 3 st in
  let params = List.init arity (fun i -> Printf.sprintf "p%d" i) in
  let env = { next_local = 0; funcs_below; locals = params; handles = [] } in
  let depth = if opts.so_nested then 3 else 2 in
  let body = gen_stmts opts env ~depth ~fuel:(Gen.int_range 2 6 st) st in
  { fn_name = name; fn_static = static; fn_params = params; fn_body = body;
    fn_ret = gen_expr opts env 2 st }

let gen_shape opts : shape Gen.t =
 fun st ->
  let nfuncs = Gen.int_range 1 4 st in
  let rec build i acc_defs acc_callable =
    if i >= nfuncs then (List.rev acc_defs, acc_callable)
    else
      let name = Printf.sprintf "f%d" i in
      (* Some functions are module-local: later lib functions may call
         them (or take their address), but main cannot name them — so a
         static reachable only through a handle is prunable-looking
         while actually live. *)
      let static = opts.so_indirect && Gen.int_range 0 3 st = 0 in
      let fn = gen_fn opts ~name ~funcs_below:acc_callable ~static st in
      build (i + 1) (fn :: acc_defs) ((name, List.length fn.fn_params) :: acc_callable)
  in
  let funcs, callable = build 0 [] [] in
  let public_callable =
    List.filter
      (fun (name, _) ->
        List.exists (fun f -> f.fn_name = name && not f.fn_static) funcs)
      callable
  in
  let env =
    { next_local = 0; funcs_below = public_callable; locals = []; handles = [] }
  in
  let depth = if opts.so_nested then 4 else 3 in
  let fuel = Gen.int_range 4 (if opts.so_nested then 12 else 10) st in
  let body = gen_stmts opts env ~depth ~fuel st in
  let final = Printf.sprintf "print_int(%s);" (gen_expr opts env 2 st) in
  { sh_funcs = funcs; sh_main = body @ [ final ] }

(* ------------------------------------------------------------------ *)
(* Shrinking.                                                          *)

let shape_compiles sh =
  match Minic.Compile.compile_program (render_shape sh) with
  | _ -> true
  | exception Minic.Diag.Compile_error _ -> false
  | exception Ucode.Linker.Link_error _ -> false

let replace_nth i x l = List.mapi (fun j y -> if j = i then x else y) l

(* Structural shrinking: drop whole functions, main statements, or
   statements inside one function.  Candidates that no longer compile
   (a dropped [var] with live uses, a dropped function with live
   callers) are filtered out rather than repaired. *)
let shrink_shape sh yield =
  let yield sh' = if shape_compiles sh' then yield sh' in
  QCheck.Shrink.list_spine sh.sh_funcs (fun fs ->
      yield { sh with sh_funcs = fs });
  QCheck.Shrink.list_spine sh.sh_main (fun m -> yield { sh with sh_main = m });
  List.iteri
    (fun i f ->
      QCheck.Shrink.list_spine f.fn_body (fun body ->
          yield
            { sh with
              sh_funcs = replace_nth i { f with fn_body = body } sh.sh_funcs }))
    sh.sh_funcs

let print_sources (sources : Minic.Compile.source list) =
  String.concat "\n---\n"
    (List.map
       (fun s ->
         Printf.sprintf "// module %s\n%s" s.Minic.Compile.src_module
           s.Minic.Compile.src_text)
       sources)

let arbitrary_shape opts =
  QCheck.make
    ~print:(fun sh -> print_sources (render_shape sh))
    ~shrink:shrink_shape (gen_shape opts)

(* ------------------------------------------------------------------ *)
(* Hot/cold-skewed shapes (region/demand inlining fodder).             *)

(* One dominant path: main drives every library function [trip] times
   from a counting loop, and each function guards a fat side path
   behind a comparison only the last few iterations satisfy.  The
   training profile then shows a hot spine plus blocks executed a
   handful of times — cold under the region/demand hottest-block basis
   yet still reached at run time (the side path writes the public
   globals and array), exactly the shape whose handling distinguishes
   the three inline modes. *)
let gen_skewed_shape : shape Gen.t =
 fun st ->
  let nfuncs = Gen.int_range 1 3 st in
  let trip = Gen.int_range 30 60 st in
  let rec build i acc callable =
    if i >= nfuncs then (List.rev acc, callable)
    else begin
      let name = Printf.sprintf "f%d" i in
      let env =
        { next_local = 0; funcs_below = callable; locals = [ "p0" ];
          handles = [] }
      in
      let hot = gen_stmts tame_opts env ~depth:1 ~fuel:(Gen.int_range 1 3 st) st in
      let threshold = trip - Gen.int_range 2 8 st in
      let cold =
        [ Printf.sprintf "gs = gs + p0 * %d;" (Gen.int_range 2 9 st);
          Printf.sprintf "gt = (gt * 2 + %s) & 65535;"
            (gen_expr tame_opts env 1 st);
          Printf.sprintf "ga[(p0) & 15] = ga[(%s) & 15] + gt;"
            (gen_expr tame_opts env 1 st);
          Printf.sprintf "gs = gs - (gt & %d);" (Gen.int_range 1 255 st) ]
      in
      let body =
        hot
        @ [ Printf.sprintf "if (p0 > %d) { %s } else { }" threshold
              (String.concat " " cold) ]
      in
      let fn =
        { fn_name = name; fn_static = false; fn_params = [ "p0" ];
          fn_body = body; fn_ret = gen_expr tame_opts env 1 st }
      in
      build (i + 1) (fn :: acc) ((name, 1) :: callable)
    end
  in
  let funcs, callable = build 0 [] [] in
  let calls =
    List.map (fun (name, _) -> Printf.sprintf "gs = gs + %s(i0);" name)
      (List.rev callable)
  in
  { sh_funcs = funcs;
    sh_main =
      [ Printf.sprintf "for (var i0 = 0; i0 < %d; i0 = i0 + 1) { %s }" trip
          (String.concat " " calls) ] }

let arbitrary_skewed_shape =
  QCheck.make
    ~print:(fun sh -> print_sources (render_shape sh))
    ~shrink:shrink_shape gen_skewed_shape

(* ------------------------------------------------------------------ *)
(* Rendered-program generators (the pre-existing interface).           *)

let gen_program_sources st : Minic.Compile.source list =
  render_shape (gen_shape tame_opts st)

let gen_program : U.program Gen.t =
 fun st ->
  let sources = gen_program_sources st in
  try fst (Minic.Compile.compile_program sources)
  with Minic.Diag.Compile_error ds ->
    failwith
      ("generator produced an invalid program:\n"
      ^ String.concat "\n" (List.map Minic.Diag.to_string ds)
      ^ "\n--- sources ---\n"
      ^ String.concat "\n---\n"
          (List.map (fun s -> s.Minic.Compile.src_text) sources))

let arbitrary_program =
  QCheck.make ~print:(fun p -> Ucode.Pp.program_to_string p) gen_program

let arbitrary_sources =
  QCheck.make ~print:print_sources gen_program_sources

(* ------------------------------------------------------------------ *)
(* Outcome helpers.                                                    *)

(* Run in the interpreter; normalize traps (possible only via fuel on
   pathological nests, which we treat as equivalent outcomes). *)
let interp_config =
  { Interp.default_config with Interp.fuel = 3_000_000; max_call_depth = 2_000 }

let interp_outcome p =
  match Interp.run ~config:interp_config p with
  | r -> r.Interp.output
  | exception Interp.Trap (t, _) -> "<trap: " ^ Interp.trap_message t ^ ">"

let sim_outcome p =
  let config =
    { Machine.Sim.default_config with Machine.Sim.max_instructions = 30_000_000 }
  in
  match Machine.Sim.run ~config (Machine.Layout.build p) with
  | r -> r.Machine.Sim.output
  | exception Machine.Sim.Trap (t, _) ->
    "<trap: " ^ Machine.Sim.trap_message t ^ ">"

(* Traps of the two engines have different messages; compare modulo
   trap-ness only when both trap. *)
let same_outcome a b =
  let is_trap s = String.length s >= 6 && String.sub s 0 6 = "<trap:" in
  if is_trap a || is_trap b then is_trap a && is_trap b else String.equal a b

(* ------------------------------------------------------------------ *)
(* Random HLO configurations (always validating).                      *)

(* A random staging schedule: nondecreasing cumulative budget
   fractions, ending at 1.0 as Config requires. *)
let gen_staging st =
  let n = Gen.int_range 1 4 st in
  let cuts =
    List.init (n - 1) (fun _ -> float_of_int (Gen.int_range 1 99 st) /. 100.0)
  in
  List.sort compare cuts @ [ 1.0 ]

let gen_hlo_config : Hlo.Config.t Gen.t =
 fun st ->
  let scope =
    Gen.oneofl [ Hlo.Config.Base; Hlo.Config.C; Hlo.Config.P; Hlo.Config.CP ] st
  in
  let base =
    { Hlo.Config.default with
      Hlo.Config.budget_percent = float_of_int (Gen.int_range 0 400 st);
      pass_limit = Gen.int_range 1 5 st;
      staging = gen_staging st;
      enable_inlining = Gen.bool st;
      enable_cloning = Gen.bool st;
      enable_outlining = Gen.bool st;
      max_operations = (if Gen.bool st then Some (Gen.int_range 0 20 st) else None);
      optimize_between_passes = Gen.bool st;
      inline_mode =
        Gen.oneofl [ Policy.Whole; Policy.Whole; Policy.Region; Policy.Demand ]
          st;
      region_cold_fraction = float_of_int (Gen.int_range 5 95 st) /. 100.0;
      validate = true }
  in
  Hlo.Config.with_scope base scope

(* ------------------------------------------------------------------ *)
(* Scale-sized deterministic programs (bench/bench_scale.ml).          *)

(* The qcheck generators above make *small* adversarial programs for
   shrinking; the scale generator makes *big* boring ones — thousands
   of routines across dozens of modules — so the parallel pool has
   enough independent shards to amortize its overhead.  Everything is
   a pure function of (shape, routines, seed): the PRNG is the same
   LCG as lib/workloads/synthetic.ml, so the generated text — and
   therefore the compiled IR — is bit-identical across runs and jobs
   levels. *)

module Scale = struct
  type shape =
    | Wide  (** flat call graph: many leaves behind one hub per module *)
    | Deep  (** one program-long call chain threaded through modules *)
    | Scc   (** mutually recursive triples, bounded by a counter param *)

  let shape_name = function Wide -> "wide" | Deep -> "deep" | Scc -> "scc"
  let all_shapes = [ Wide; Deep; Scc ]

  let funcs_per_module = 25

  type rng = { mutable state : int64 }

  let make_rng seed =
    { state = Int64.logxor 0x9E3779B97F4A7C15L (Int64.of_int (seed + 1)) }

  let next rng bound =
    rng.state <-
      Int64.add (Int64.mul rng.state 6364136223846793005L)
        1442695040888963407L;
    Int64.to_int
      (Int64.rem (Int64.shift_right_logical rng.state 33) (Int64.of_int bound))

  (* List.init with a guaranteed left-to-right evaluation order (the
     stdlib leaves it unspecified, and [f] advances the PRNG). *)
  let tabulate n f =
    let rec go i = if i >= n then [] else let x = f i in x :: go (i + 1) in
    go 0

  let ops = [| "+"; "-"; "*"; "&"; "|"; "^" |]

  (* A run of arithmetic statements over [params] plus fresh temps, and
     a result expression over whatever ended up in scope.  Constant
     operands and temp-to-temp chains give constprop/copyprop/cse real
     work in every body. *)
  let arith rng ~params ~n =
    let scope = ref (List.rev params) in
    let atom () =
      match next rng 4 with
      | 0 -> string_of_int (1 + next rng 99)
      | 1 -> "gt"
      | _ -> (
        match !scope with
        | [] -> string_of_int (1 + next rng 99)
        | l -> List.nth l (next rng (List.length l)))
    in
    let stmts =
      tabulate n (fun i ->
          let t = Printf.sprintf "t%d" i in
          let s =
            Printf.sprintf "var %s = (%s %s %s);" t (atom ())
              ops.(next rng (Array.length ops))
              (atom ())
          in
          scope := t :: !scope;
          s)
    in
    (stmts, Printf.sprintf "(%s %s %s)" (atom ())
              ops.(next rng (Array.length ops)) (atom ()))

  (* Every body stores into [gs], so no routine is deletable and the
     program's size tracks [routines] through HLO. *)
  let leaf rng ~name ~static =
    let arity = 1 + next rng 2 in
    let params = tabulate arity (fun i -> Printf.sprintf "p%d" i) in
    let stmts, ret = arith rng ~params ~n:(3 + next rng 4) in
    { fn_name = name; fn_static = static; fn_params = params;
      fn_body = stmts @ [ Printf.sprintf "gs = (gs + %s);" ret ];
      fn_ret = ret }

  let chain_fn rng ~name ~callee =
    let stmts, ret = arith rng ~params:[ "p0" ] ~n:(2 + next rng 3) in
    let tail =
      match callee with
      | None -> Printf.sprintf "gs = (gs + %s);" ret
      | Some c -> Printf.sprintf "gs = (gs + %s((p0 + %d)));" c (next rng 9)
    in
    { fn_name = name; fn_static = false; fn_params = [ "p0" ];
      fn_body = stmts @ [ tail ]; fn_ret = ret }

  let scc_member rng ~name ~succ =
    let stmts, ret = arith rng ~params:[ "n" ] ~n:(1 + next rng 3) in
    { fn_name = name; fn_static = true; fn_params = [ "n" ];
      fn_body =
        stmts
        @ [ Printf.sprintf "if (n > 0) { gs = (gs + %s((n - 1))); }" succ ];
      fn_ret = ret }

  let hub ~name ~calls =
    let body =
      List.map
        (fun (c, arity) ->
          let args = List.init arity (fun i -> Printf.sprintf "(p0 + %d)" i) in
          Printf.sprintf "gs = (gs + %s(%s));" c (String.concat ", " args))
        calls
    in
    { fn_name = name; fn_static = false; fn_params = [ "p0" ];
      fn_body = body; fn_ret = "(gs + p0)" }

  let wide_module rng m =
    let leaves =
      tabulate (funcs_per_module - 1) (fun j ->
          leaf rng
            ~name:(Printf.sprintf "m%d_f%d" m j)
            ~static:(j mod 3 = 0))
    in
    leaves
    @ [ hub
          ~name:(Printf.sprintf "m%d_hub" m)
          ~calls:
            (List.map (fun f -> (f.fn_name, List.length f.fn_params)) leaves) ]

  (* f0 of module m continues module m-1's chain, so the whole program
     is one call chain rooted at the last module's last function. *)
  let deep_module rng m =
    tabulate funcs_per_module (fun j ->
        let callee =
          if j > 0 then Some (Printf.sprintf "m%d_f%d" m (j - 1))
          else if m > 0 then
            Some (Printf.sprintf "m%d_f%d" (m - 1) (funcs_per_module - 1))
          else None
        in
        chain_fn rng ~name:(Printf.sprintf "m%d_f%d" m j) ~callee)

  (* Eight mutually recursive triples per module plus a hub that enters
     each one; recursion is bounded by the decreasing counter. *)
  let scc_module rng m =
    let triples = (funcs_per_module - 1) / 3 in
    let members =
      List.concat
        (tabulate triples (fun g ->
             tabulate 3 (fun k ->
                 let j = (3 * g) + k in
                 let succ = (3 * g) + ((k + 1) mod 3) in
                 scc_member rng
                   ~name:(Printf.sprintf "m%d_f%d" m j)
                   ~succ:(Printf.sprintf "m%d_f%d" m succ))))
    in
    members
    @ [ hub
          ~name:(Printf.sprintf "m%d_hub" m)
          ~calls:
            (tabulate triples (fun g ->
                 (Printf.sprintf "m%d_f%d" m (3 * g), 1))) ]

  (** At least [routines] routines (rounded up to whole modules, plus
      [main]), deterministic in [seed]. *)
  let sources shape ~routines ~seed : Minic.Compile.source list =
    let rng =
      make_rng
        ((seed * 8191)
        + (match shape with Wide -> 1 | Deep -> 2 | Scc -> 3))
    in
    let nmods =
      max 1 ((routines + funcs_per_module - 1) / funcs_per_module)
    in
    let modules =
      tabulate nmods (fun m ->
          let fns =
            match shape with
            | Wide -> wide_module rng m
            | Deep -> deep_module rng m
            | Scc -> scc_module rng m
          in
          let header =
            if m = 0 then "public global gs;\npublic global gt = 3;\n" else ""
          in
          Minic.Compile.source
            ~module_name:(Printf.sprintf "m%d" m)
            (header ^ String.concat "\n" (List.map render_fn fns)))
    in
    let main_calls =
      match shape with
      | Wide | Scc ->
        tabulate nmods (fun m -> Printf.sprintf "gs = (gs + m%d_hub(3));" m)
      | Deep ->
        [ Printf.sprintf "gs = (gs + m%d_f%d(5));" (nmods - 1)
            (funcs_per_module - 1) ]
    in
    let main_src =
      Minic.Compile.source ~module_name:"app"
        (Printf.sprintf
           "func main() { %s print_int(gs); print_int(gt); return 0; }"
           (String.concat " " main_calls))
    in
    modules @ [ main_src ]

  (** Routines in the program [sources shape ~routines] actually
      produces (whole modules plus [main]). *)
  let routine_count ~routines =
    (max 1 ((routines + funcs_per_module - 1) / funcs_per_module)
     * funcs_per_module)
    + 1
end
