(* Random-program generation shared by the property suites
   (test_properties.ml) and the parallel determinism suite
   (test_parallel.ml).

   The central tool is a generator of random — but always terminating
   and trap-free by construction — multi-module MiniC programs that
   print observable values, plus the outcome helpers used to compare
   engines differentially. *)

module U = Ucode.Types
module Gen = QCheck.Gen

(* ------------------------------------------------------------------ *)
(* Random program generator.                                           *)

(* State threaded through generation: a name supply. *)
type genv = {
  mutable next_local : int;
  funcs_below : (string * int) list;  (* callable (name, arity) *)
  mutable locals : string list;       (* in scope *)
}

(* Int64.min_int has no literal form (the lexer sees MINUS applied to
   an out-of-range magnitude, like C); spell it arithmetically. *)
let const_to_string k =
  if Int64.equal k Int64.min_int then "(0 - 9223372036854775807 - 1)"
  else Printf.sprintf "%Ld" k

let small_const =
  Gen.oneof
    [ Gen.map Int64.of_int (Gen.int_range (-100) 100);
      Gen.oneofl [ 0L; 1L; 2L; 7L; 255L; 65535L; -1L; Int64.max_int;
                   Int64.min_int ] ]

let rec gen_expr env depth st =
  let atom =
    Gen.oneof
      ([ Gen.map const_to_string small_const ]
      @ (if env.locals = [] then [] else [ Gen.oneofl env.locals ])
      @ [ Gen.return "gs"; Gen.return "gt" ])
  in
  if depth <= 0 then atom st
  else
    match Gen.int_range 0 9 st with
    | 0 | 1 ->
      Printf.sprintf "(%s %s %s)"
        (gen_expr env (depth - 1) st)
        (Gen.oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ] st)
        (gen_expr env (depth - 1) st)
    | 2 ->
      (* Division with a guarded positive divisor. *)
      Printf.sprintf "(%s %s ((%s & 1023) + 1))"
        (gen_expr env (depth - 1) st)
        (Gen.oneofl [ "/"; "%" ] st)
        (gen_expr env (depth - 1) st)
    | 3 ->
      Printf.sprintf "(%s %s (%s & 15))"
        (gen_expr env (depth - 1) st)
        (Gen.oneofl [ "<<"; ">>" ] st)
        (gen_expr env (depth - 1) st)
    | 4 ->
      Printf.sprintf "(%s %s %s)"
        (gen_expr env (depth - 1) st)
        (Gen.oneofl [ "<"; "<="; ">"; ">="; "=="; "!=" ] st)
        (gen_expr env (depth - 1) st)
    | 5 ->
      Printf.sprintf "(%s %s %s)"
        (gen_expr env (depth - 1) st)
        (Gen.oneofl [ "&&"; "||" ] st)
        (gen_expr env (depth - 1) st)
    | 6 -> Printf.sprintf "(%s(%s))" (Gen.oneofl [ "-"; "!" ] st)
             (gen_expr env (depth - 1) st)
    | 7 -> Printf.sprintf "ga[(%s) & 15]" (gen_expr env (depth - 1) st)
    | 8 when env.funcs_below <> [] ->
      let name, arity = Gen.oneofl env.funcs_below st in
      let args =
        List.init arity (fun _ -> gen_expr env (depth - 1) st)
      in
      Printf.sprintf "%s(%s)" name (String.concat ", " args)
    | _ -> atom st

let rec gen_stmts env ~depth ~fuel st : string list =
  if fuel <= 0 then []
  else
    let stmt =
      match Gen.int_range 0 9 st with
      | 0 | 1 ->
        let name = Printf.sprintf "t%d" env.next_local in
        env.next_local <- env.next_local + 1;
        let s = Printf.sprintf "var %s = %s;" name (gen_expr env 2 st) in
        env.locals <- name :: env.locals;
        [ s ]
      | 2 when env.locals <> [] ->
        [ Printf.sprintf "%s = %s;" (Gen.oneofl env.locals st)
            (gen_expr env 2 st) ]
      | 3 ->
        [ Printf.sprintf "%s = %s;" (Gen.oneofl [ "gs"; "gt" ] st)
            (gen_expr env 2 st) ]
      | 4 ->
        [ Printf.sprintf "ga[(%s) & 15] = %s;" (gen_expr env 1 st)
            (gen_expr env 2 st) ]
      | 5 when depth > 0 ->
        let saved = env.locals in
        let then_ = gen_stmts env ~depth:(depth - 1) ~fuel:(fuel / 2) st in
        env.locals <- saved;
        let else_ = gen_stmts env ~depth:(depth - 1) ~fuel:(fuel / 2) st in
        env.locals <- saved;
        [ Printf.sprintf "if (%s) { %s } else { %s }" (gen_expr env 2 st)
            (String.concat " " then_) (String.concat " " else_) ]
      | 6 when depth > 0 ->
        (* A loop bounded by construction; the body may break early. *)
        let i = Printf.sprintf "i%d" env.next_local in
        env.next_local <- env.next_local + 1;
        let bound = Gen.int_range 1 5 st in
        let saved = env.locals in
        env.locals <- i :: env.locals;
        let body = gen_stmts env ~depth:(depth - 1) ~fuel:(fuel / 2) st in
        let break_ =
          if Gen.bool st then
            Printf.sprintf "if (%s) { break; }" (gen_expr env 1 st)
          else ""
        in
        env.locals <- saved;
        [ Printf.sprintf "for (var %s = 0; %s < %d; %s = %s + 1) { %s %s }" i i
            bound i i
            (String.concat " " body)
            break_ ]
      | 7 -> [ Printf.sprintf "print_int(%s);" (gen_expr env 2 st) ]
      | 8 when env.funcs_below <> [] ->
        let name, arity = Gen.oneofl env.funcs_below st in
        let args = List.init arity (fun _ -> gen_expr env 2 st) in
        [ Printf.sprintf "%s(%s);" name (String.concat ", " args) ]
      | _ -> [ Printf.sprintf "gt = gt + %s;" (gen_expr env 1 st) ]
    in
    stmt @ gen_stmts env ~depth ~fuel:(fuel - 1) st

(* One function definition; may only call [funcs_below] (acyclic call
   graph guarantees termination). *)
let gen_func ~name ~funcs_below ~static st =
  let arity = Gen.int_range 0 3 st in
  let params = List.init arity (fun i -> Printf.sprintf "p%d" i) in
  let env = { next_local = 0; funcs_below; locals = params } in
  let body = gen_stmts env ~depth:2 ~fuel:(Gen.int_range 2 6 st) st in
  let ret = Printf.sprintf "return %s;" (gen_expr env 2 st) in
  ( Printf.sprintf "%s func %s(%s) { %s %s }"
      (if static then "static" else "")
      name (String.concat ", " params)
      (String.concat " " body)
      ret,
    (name, arity) )

(* A whole program: a library module and a main module.  The library's
   globals are public so both modules touch them. *)
let gen_program_sources st : Minic.Compile.source list =
  let nfuncs = Gen.int_range 1 4 st in
  let rec build i acc_defs acc_callable =
    if i >= nfuncs then (List.rev acc_defs, acc_callable)
    else
      let name = Printf.sprintf "f%d" i in
      let def, sig_ =
        gen_func ~name ~funcs_below:acc_callable ~static:false st
      in
      build (i + 1) (def :: acc_defs) (sig_ :: acc_callable)
  in
  let defs, callable = build 0 [] [] in
  let lib =
    "public global ga[16];\npublic global gs;\npublic global gt = 3;\n"
    ^ String.concat "\n" defs
  in
  let env = { next_local = 0; funcs_below = callable; locals = [] } in
  let main_body = gen_stmts env ~depth:3 ~fuel:(Gen.int_range 4 10 st) st in
  let prints =
    [ "print_int(gs);"; "print_int(gt);"; "print_int(ga[3]);";
      Printf.sprintf "print_int(%s);" (gen_expr env 2 st) ]
  in
  let main =
    Printf.sprintf "func main() { %s %s return 0; }"
      (String.concat " " main_body)
      (String.concat " " prints)
  in
  [ Minic.Compile.source ~module_name:"lib" lib;
    Minic.Compile.source ~module_name:"app" main ]

let gen_program : U.program Gen.t =
 fun st ->
  let sources = gen_program_sources st in
  try fst (Minic.Compile.compile_program sources)
  with Minic.Diag.Compile_error ds ->
    failwith
      ("generator produced an invalid program:\n"
      ^ String.concat "\n" (List.map Minic.Diag.to_string ds)
      ^ "\n--- sources ---\n"
      ^ String.concat "\n---\n"
          (List.map (fun s -> s.Minic.Compile.src_text) sources))

let arbitrary_program =
  QCheck.make ~print:(fun p -> Ucode.Pp.program_to_string p) gen_program

let print_sources (sources : Minic.Compile.source list) =
  String.concat "\n---\n"
    (List.map
       (fun s ->
         Printf.sprintf "// module %s\n%s" s.Minic.Compile.src_module
           s.Minic.Compile.src_text)
       sources)

let arbitrary_sources =
  QCheck.make ~print:print_sources gen_program_sources

(* ------------------------------------------------------------------ *)
(* Outcome helpers.                                                    *)

(* Run in the interpreter; normalize traps (possible only via fuel on
   pathological nests, which we treat as equivalent outcomes). *)
let interp_config =
  { Interp.default_config with Interp.fuel = 3_000_000; max_call_depth = 2_000 }

let interp_outcome p =
  match Interp.run ~config:interp_config p with
  | r -> r.Interp.output
  | exception Interp.Trap (t, _) -> "<trap: " ^ Interp.trap_message t ^ ">"

let sim_outcome p =
  let config =
    { Machine.Sim.default_config with Machine.Sim.max_instructions = 30_000_000 }
  in
  match Machine.Sim.run ~config (Machine.Layout.build p) with
  | r -> r.Machine.Sim.output
  | exception Machine.Sim.Trap (t, _) ->
    "<trap: " ^ Machine.Sim.trap_message t ^ ">"

(* Traps of the two engines have different messages; compare modulo
   trap-ness only when both trap. *)
let same_outcome a b =
  let is_trap s = String.length s >= 6 && String.sub s 0 6 = "<trap:" in
  if is_trap a || is_trap b then is_trap a && is_trap b else String.equal a b

(* ------------------------------------------------------------------ *)
(* Random HLO configurations (always validating).                      *)

let gen_hlo_config : Hlo.Config.t Gen.t =
 fun st ->
  let scope =
    Gen.oneofl [ Hlo.Config.Base; Hlo.Config.C; Hlo.Config.P; Hlo.Config.CP ] st
  in
  let base =
    { Hlo.Config.default with
      Hlo.Config.budget_percent = float_of_int (Gen.int_range 0 400 st);
      pass_limit = Gen.int_range 1 5 st;
      enable_inlining = Gen.bool st;
      enable_cloning = Gen.bool st;
      enable_outlining = Gen.bool st;
      max_operations = (if Gen.bool st then Some (Gen.int_range 0 20 st) else None);
      validate = true }
  in
  Hlo.Config.with_scope base scope
