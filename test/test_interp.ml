(* Tests for the IR interpreter: builtins, traps, the fuel/depth
   limits, and the exactness of the profile database it collects. *)

module U = Ucode.Types

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 0.0001))

let compile src = Minic.Compile.compile_string src

let test_exit_code () =
  let r = Interp.run (compile "func main() { return 42; }") in
  check_bool "exit code" true (Int64.equal r.Interp.exit_code 42L)

let test_print_builtins () =
  let r =
    Interp.run
      (compile
         {| func main() {
              print_int(-7);
              print_char('h'); print_char('i'); print_char('\n');
              return 0;
            } |})
  in
  check_string "output" "-7\nhi\n" r.Interp.output

let test_alloc_sequential () =
  let src = {|
    func main() {
      var a = alloc(3);
      var b = alloc(2);
      print_int(b - a);
      return 0;
    }
  |} in
  check_string "bump allocation" "3\n" (Interp.run (compile src)).Interp.output

let test_fuel_limit () =
  let p = compile "func main() { while (1) { } return 0; }" in
  let config = { Interp.default_config with Interp.fuel = 10_000 } in
  match Interp.run ~config p with
  | exception Interp.Trap (Interp.Out_of_fuel, _) -> ()
  | _ -> Alcotest.fail "expected fuel trap"

let test_depth_limit () =
  let p =
    compile "func f(n) { return f(n + 1); } func main() { return f(0); }"
  in
  let config = { Interp.default_config with Interp.max_call_depth = 100 } in
  match Interp.run ~config p with
  | exception Interp.Trap (Interp.Call_depth_exceeded, _) -> ()
  | _ -> Alcotest.fail "expected depth trap"

let test_depth_recovers () =
  (* Deep-but-bounded recursion must not trip the limit when each call
     returns (the depth counter must be decremented on return). *)
  let src = {|
    func down(n) { if (n == 0) { return 0; } return down(n - 1); }
    func main() {
      var i = 0;
      while (i < 50) { down(90); i = i + 1; }
      print_int(i);
      return 0;
    }
  |} in
  let config = { Interp.default_config with Interp.max_call_depth = 100 } in
  check_string "depth recovers" "50\n"
    (Interp.run ~config (compile src)).Interp.output

let test_bad_handle () =
  let src = {|
    func main() {
      var f = 123456;
      return f(1);
    }
  |} in
  match Interp.run (compile src) with
  | exception Interp.Trap (Interp.Bad_function_handle _, _) -> ()
  | _ -> Alcotest.fail "expected bad handle trap"

let test_null_deref () =
  let src = "func main() { var p = 0; return p[0]; }" in
  match Interp.run (compile src) with
  | exception Interp.Trap (Interp.Out_of_bounds _, _) -> ()
  | _ -> Alcotest.fail "expected null deref trap"

(* ------------------------------------------------------------------ *)
(* Profile exactness.                                                  *)

let test_profile_counts_exact () =
  let src = {|
    func leaf(x) { return x + 1; }
    func main() {
      var s = 0;
      for (var i = 0; i < 7; i = i + 1) { s = leaf(s); }
      if (s > 100) { print_int(0); } else { print_int(s); }
      return 0;
    }
  |} in
  let p = compile src in
  let r = Interp.train p in
  let prof = r.Interp.profile in
  let leaf = U.find_routine_exn p "leaf" in
  let main = U.find_routine_exn p "main" in
  check_float "leaf entered 7 times" 7.0 (Ucode.Profile.entry_count prof leaf);
  check_float "main entered once" 1.0 (Ucode.Profile.entry_count prof main);
  (* The call site to leaf fired 7 times. *)
  let site =
    match U.calls_of_routine main with
    | sites -> (
      match
        List.find_opt
          (fun (_, c) -> c.U.c_callee = U.Direct "leaf")
          sites
      with
      | Some (_, c) -> c.U.c_site
      | None -> Alcotest.fail "no call to leaf")
  in
  check_float "site count" 7.0 (Ucode.Profile.site_count prof site)

let test_profile_indirect_targets () =
  let src = {|
    func a(x) { return x; }
    func b(x) { return x + 1; }
    func main() {
      var f = &a;
      var s = 0;
      for (var i = 0; i < 5; i = i + 1) {
        s = s + f(i);
        if (i == 2) { f = b; }
      }
      print_int(s);
      return 0;
    }
  |} in
  let p = compile src in
  let r = Interp.train p in
  let main = U.find_routine_exn p "main" in
  let site =
    match
      List.find_opt
        (fun (_, c) ->
          match c.U.c_callee with U.Indirect _ -> true | U.Direct _ -> false)
        (U.calls_of_routine main)
    with
    | Some (_, c) -> c.U.c_site
    | None -> Alcotest.fail "no indirect site"
  in
  let hist = Ucode.Profile.site_targets r.Interp.profile site in
  (* i = 0,1,2 call a; i = 3,4 call b. *)
  check_float "a count" 3.0 (List.assoc "a" hist);
  check_float "b count" 2.0 (List.assoc "b" hist)

let test_profile_block_flow_conservation () =
  (* For every routine, the entry count equals the number of dynamic
     invocations, which equals the sum of its incoming site counts
     (main gets one free invocation). *)
  let b = Workloads.Suite.find "026.compress" in
  let p = Workloads.Suite.compile b ~input:Workloads.Suite.Train in
  let r = Interp.train p in
  let prof = r.Interp.profile in
  let cg = Ucode.Callgraph.build p in
  List.iter
    (fun (routine : U.routine) ->
      let entry = Ucode.Profile.entry_count prof routine in
      let incoming =
        List.fold_left
          (fun acc (e : Ucode.Callgraph.edge) ->
            acc +. Ucode.Profile.site_count prof e.Ucode.Callgraph.e_site)
          0.0
          (Ucode.Callgraph.incoming cg routine.U.r_name)
      in
      let expected =
        if routine.U.r_name = p.U.p_main then incoming +. 1.0 else incoming
      in
      (* Indirect calls also enter routines; account via target
         histograms. *)
      let indirect_entries =
        List.fold_left
          (fun acc (e : Ucode.Callgraph.edge) ->
            match e.Ucode.Callgraph.e_callee with
            | U.Indirect _ ->
              acc
              +. (List.assoc_opt routine.U.r_name
                    (Ucode.Profile.site_targets prof e.Ucode.Callgraph.e_site)
                 |> Option.value ~default:0.0)
            | U.Direct _ -> acc)
          0.0 cg.Ucode.Callgraph.cg_edges
      in
      check_float
        ("flow conservation for " ^ routine.U.r_name)
        (expected +. indirect_entries) entry)
    p.U.p_routines

let test_print_char_masks () =
  (* Values beyond a byte are masked, as the builtin documents. *)
  let src = "func main() { print_char(65 + 256); print_char(10); return 0; }" in
  check_string "masked to a byte" "A
" (Interp.run (compile src)).Interp.output

let test_alloc_zero_and_negative () =
  let ok = compile "func main() { var p = alloc(0); var q = alloc(1); print_int(q - p); return 0; }" in
  check_string "alloc(0) is a no-op" "0
" (Interp.run ok).Interp.output;
  let bad = compile "func main() { var p = alloc(0 - 5); return p; }" in
  match Interp.run bad with
  | exception Interp.Trap (Interp.Out_of_memory, _) -> ()
  | _ -> Alcotest.fail "negative alloc must trap"

let test_indirect_arity_mismatch_traps () =
  let src = {|
    func two(a, b) { return a + b; }
    func main() {
      var f = &two;
      return f(1);
    }
  |} in
  match Interp.run (compile src) with
  | exception Interp.Trap (Interp.Indirect_arity_mismatch _, _) -> ()
  | _ -> Alcotest.fail "indirect arity mismatch must trap"

let test_division_by_zero () =
  let div = compile "func main() { var d = 0; return 1 / d; }" in
  (match Interp.run div with
  | exception Interp.Trap (Interp.Division_by_zero, _) -> ()
  | _ -> Alcotest.fail "expected division trap");
  let rem = compile "func main() { var d = 0; return 5 % d; }" in
  match Interp.run rem with
  | exception Interp.Trap (Interp.Division_by_zero, _) -> ()
  | _ -> Alcotest.fail "expected remainder trap"

let test_global_index_out_of_range () =
  let src = {|
    global ga[4];
    func main() { var i = 1000000; return ga[i * 1000]; }
  |} in
  match Interp.run (compile src) with
  | exception Interp.Trap (Interp.Out_of_bounds _, _) -> ()
  | _ -> Alcotest.fail "expected out-of-bounds trap"

(* ------------------------------------------------------------------ *)
(* The run_outcome API: trap-time observable state.                    *)

let test_outcome_finished () =
  let src = {|
    global gs;
    func main() { gs = 5; print_int(gs); return 3; }
  |} in
  match Interp.run_outcome (compile src) with
  | Interp.Finished r ->
    check_bool "exit" true (Int64.equal r.Interp.exit_code 3L);
    check_string "output" "5\n" r.Interp.output;
    check_bool "final globals" true
      (List.exists
         (fun (n, cells) -> String.ends_with ~suffix:"gs" n && cells = [| 5L |])
         r.Interp.globals)
  | _ -> Alcotest.fail "expected Finished"

let test_outcome_partial_at_trap () =
  (* The trap must carry everything observed up to it: prior prints and
     prior global writes, but nothing after. *)
  let src = {|
    global gs;
    func main() {
      gs = 7;
      print_int(1);
      var d = 0;
      print_int(2 / d);
      gs = 9;
      return 0;
    }
  |} in
  match Interp.run_outcome (compile src) with
  | Interp.Trapped { trap = Interp.Division_by_zero; partial; _ } ->
    check_string "partial output" "1\n" partial.Interp.output;
    check_bool "globals at trap" true
      (List.exists
         (fun (n, cells) -> String.ends_with ~suffix:"gs" n && cells = [| 7L |])
         partial.Interp.globals)
  | Interp.Trapped { trap; _ } ->
    Alcotest.fail ("wrong trap: " ^ Interp.trap_message trap)
  | _ -> Alcotest.fail "expected Trapped"

let test_outcome_fuel_exhaustion () =
  let src = {|
    func main() {
      var i = 0;
      while (1) { print_int(i); i = i + 1; }
      return 0;
    }
  |} in
  let config = { Interp.default_config with Interp.fuel = 200 } in
  match Interp.run_outcome ~config (compile src) with
  | Interp.Trapped { trap = Interp.Out_of_fuel; partial; _ } ->
    check_bool "made progress before running dry" true
      (String.length partial.Interp.output > 0)
  | _ -> Alcotest.fail "expected fuel exhaustion outcome"

let test_steps_counted () =
  let r = Interp.run (compile "func main() { return 1 + 2; }") in
  check_bool "steps positive" true (r.Interp.steps > 0);
  check_bool "steps small" true (r.Interp.steps < 20)

let () =
  Alcotest.run "interp"
    [ ( "execution",
        [ Alcotest.test_case "exit code" `Quick test_exit_code;
          Alcotest.test_case "print builtins" `Quick test_print_builtins;
          Alcotest.test_case "alloc" `Quick test_alloc_sequential;
          Alcotest.test_case "steps" `Quick test_steps_counted ] );
      ( "traps",
        [ Alcotest.test_case "fuel" `Quick test_fuel_limit;
          Alcotest.test_case "depth" `Quick test_depth_limit;
          Alcotest.test_case "depth recovers" `Quick test_depth_recovers;
          Alcotest.test_case "bad handle" `Quick test_bad_handle;
          Alcotest.test_case "null deref" `Quick test_null_deref;
          Alcotest.test_case "print_char masks" `Quick test_print_char_masks;
          Alcotest.test_case "alloc edge cases" `Quick
            test_alloc_zero_and_negative;
          Alcotest.test_case "indirect arity trap" `Quick
            test_indirect_arity_mismatch_traps;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "global index out of range" `Quick
            test_global_index_out_of_range ] );
      ( "outcomes",
        [ Alcotest.test_case "finished" `Quick test_outcome_finished;
          Alcotest.test_case "partial state at trap" `Quick
            test_outcome_partial_at_trap;
          Alcotest.test_case "fuel exhaustion" `Quick
            test_outcome_fuel_exhaustion ] );
      ( "profile",
        [ Alcotest.test_case "exact counts" `Quick test_profile_counts_exact;
          Alcotest.test_case "indirect targets" `Quick
            test_profile_indirect_targets;
          Alcotest.test_case "flow conservation" `Quick
            test_profile_block_flow_conservation ] ) ]
