(* The differential battery for the three inlining modes
   (--inline-mode whole | region | demand):

   - whole mode is bit-identical — IR, report and decision journal —
     whether or not the new region knobs are set, on every corpus
     program and at starved budgets (together with the committed CLI
     golden files in test/cli, which pin whole-mode bytes across PRs,
     this is the "whole never moved" guarantee);
   - all three modes are semantically equivalent on generated wild and
     hot/cold-skewed programs, at generous and starved budgets, gated
     by the oracle;
   - region mode never ends with a costlier program than whole mode on
     the seeded corpus (outlining the cold half of an over-budget
     callee is quadratically profitable; the hot residue it buys back
     is budget-checked like any other inline);
   - the per-mode decision-journal reasons: a split callee journals
     [Rejected "outlined_then_inlined"] for its whole-body candidate,
     and [Rejected "residue_over_budget"] when even the residue fails;
     whole mode journals plain [Rejected "budget"] exactly as before;
   - the seeded [Region_lost_cold_path] chaos miscompilation is caught
     by the oracle under a region-mode check (the full
     hunt/reduce/disarm cycle lives with the other chaos bugs in
     test_oracle.ml) and lands in a region-tagged fuzz bucket. *)

module U = Ucode.Types
module E = Telemetry.Event

let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let interp_config = Prog_gen.interp_config

(* ------------------------------------------------------------------ *)
(* Corpus and pipeline helpers.                                        *)

let corpus_dir =
  lazy (if Sys.file_exists "corpus" then "corpus" else "test/corpus")

let corpus =
  lazy
    (Sys.readdir (Lazy.force corpus_dir) |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".mc")
    |> List.sort compare
    |> List.map (fun f ->
           let sources =
             Oracle.Fuzz.parse_combined
               (In_channel.with_open_text
                  (Filename.concat (Lazy.force corpus_dir) f)
                  In_channel.input_all)
           in
           ( Filename.chop_suffix f ".mc",
             fst (Minic.Compile.compile_program sources) )))

let base_config = { Hlo.Config.default with Hlo.Config.validate = true }

let with_mode config mode =
  { config with Hlo.Config.inline_mode = mode }

(* Compile [p] under [config] with a private collector, returning the
   three byte-level artifacts whole mode must keep stable: optimized
   IR, the [hlo] report line, and the rendered decision journal. *)
let capture ~config p =
  let profile = (Interp.train p).Interp.profile in
  let c = Telemetry.Collector.create () in
  Telemetry.Collector.install c;
  Fun.protect ~finally:Telemetry.Collector.uninstall @@ fun () ->
  let res = Hlo.Driver.run ~config ~profile p in
  ( res,
    Serve.Render.ir res.Hlo.Driver.program,
    Serve.Render.report_line res.Hlo.Driver.report,
    Serve.Render.journal (Telemetry.Collector.decisions c) )

(* ------------------------------------------------------------------ *)
(* Whole mode is inert under the new knobs.                            *)

(* Setting the region knobs without leaving whole mode must change no
   byte of IR, report or journal — the region machinery is strictly
   gated on the mode, so [--region-cold-fraction] alone is a no-op.
   Checked at the default and at a starved budget (the starved path is
   where region/demand diverge, so it is where a gating bug would
   hide). *)
let test_whole_mode_inert () =
  List.iter
    (fun budget ->
      List.iter
        (fun (name, p) ->
          let plain = { base_config with Hlo.Config.budget_percent = budget } in
          let knobbed =
            { plain with Hlo.Config.region_cold_fraction = 0.9 }
          in
          let _, ir0, rep0, j0 = capture ~config:plain p in
          let _, ir1, rep1, j1 = capture ~config:knobbed p in
          let label what = Printf.sprintf "%s (%s @ %g%%)" what name budget in
          check_string (label "IR") ir0 ir1;
          check_string (label "report") rep0 rep1;
          check_string (label "journal") j0 j1;
          let contains hay needle =
            let n = String.length needle and h = String.length hay in
            let rec go i =
              i + n <= h && (String.sub hay i n = needle || go (i + 1))
            in
            go 0
          in
          check_bool (label "no residue counter") false
            (contains rep0 "residues=");
          check_bool (label "no split reasons") false
            (contains j0 "outlined_then_inlined"
            || contains j0 "residue_over_budget"))
        (Lazy.force corpus))
    [ 100.0; 2.0 ]

(* ------------------------------------------------------------------ *)
(* Oracle-gated mode equivalence on generated programs.                *)

let check_with mode budget fraction =
  { Oracle.default_check with
    Oracle.ck_config =
      { Oracle.default_check.Oracle.ck_config with
        Hlo.Config.inline_mode = mode; budget_percent = budget;
        region_cold_fraction = fraction } }

(* Generous and starved budgets for both new modes; the starved points
   are where splitting actually fires. *)
let mode_checks =
  [ ("region", check_with Policy.Region 100.0 0.5);
    ("region starved", check_with Policy.Region 2.0 0.6);
    ("demand", check_with Policy.Demand 100.0 0.5);
    ("demand starved", check_with Policy.Demand 2.0 0.6);
    ("whole starved", check_with Policy.Whole 2.0 0.5) ]

let prop_modes_preserve arbitrary label =
  QCheck.Test.make ~count:12
    ~name:(Printf.sprintf "all modes preserve semantics (%s)" label)
    arbitrary
    (fun sh ->
      let sources = Prog_gen.render_shape sh in
      List.for_all
        (fun (what, check) ->
          let case =
            { Oracle.Fuzz.c_label = label ^ ":" ^ what; c_sources = sources;
              c_check = check }
          in
          match Oracle.Fuzz.run_case ~interp_config case with
          | Oracle.Fuzz.Passed | Oracle.Fuzz.Skipped _ -> true
          | Oracle.Fuzz.Failed f ->
            QCheck.Test.fail_report
              (Printf.sprintf "%s broke semantics [bucket %s]: %s" what
                 f.Oracle.Fuzz.f_bucket
                 (match f.Oracle.Fuzz.f_kind with
                 | Oracle.Fuzz.Mismatch { cls; detail } -> cls ^ "\n" ^ detail
                 | Oracle.Fuzz.Crash { exn_class; detail } ->
                   exn_class ^ "\n" ^ detail)))
        mode_checks)

let prop_modes_preserve_wild =
  prop_modes_preserve (Prog_gen.arbitrary_shape Prog_gen.wild_opts) "wild"

let prop_modes_preserve_skewed =
  prop_modes_preserve Prog_gen.arbitrary_skewed_shape "skew"

(* The three modes must also agree with each other on what the program
   prints — not just each against the source program.  (Transitively
   implied by the oracle gate, but cheap to assert directly on the
   corpus, where it documents the contract.) *)
let test_modes_agree_on_corpus () =
  List.iter
    (fun (name, p) ->
      let out mode =
        let config =
          { (with_mode base_config mode) with
            Hlo.Config.budget_percent = 2.0; region_cold_fraction = 0.6 }
        in
        let res, _, _, _ = capture ~config p in
        (Interp.run ~config:interp_config res.Hlo.Driver.program).Interp.output
      in
      let whole = out Policy.Whole in
      check_string (name ^ ": region agrees") whole (out Policy.Region);
      check_string (name ^ ": demand agrees") whole (out Policy.Demand))
    (Lazy.force corpus)

(* ------------------------------------------------------------------ *)
(* Region size discipline on the corpus.                               *)

(* "Never worse than whole", in the compile-cost metric the budget
   governs (sum of routine sizes squared) — an unconditional cost
   inequality would be false, because region mode exists precisely to
   *buy* inlining whole mode cannot afford (on the corpus: region_warm
   at a generous budget, where region pays some cost for a hot-residue
   inline whole rejects outright).  The checkable claims:

   1. region respects exactly the budget ceiling whole obeys;
   2. region ends costlier than whole only when the cost bought extra
      accepted inlines — equivalently, with no extra inlines region is
      never costlier, since splitting alone is quadratically
      profitable.  (Linear instruction count may grow by a split's
      call/return overhead even then, which is why the claim is stated
      in the governed metric.) *)
let test_region_size_discipline () =
  List.iter
    (fun budget ->
      List.iter
        (fun (name, p) ->
          let final mode =
            let config =
              { (with_mode base_config mode) with
                Hlo.Config.budget_percent = budget;
                region_cold_fraction = 0.6 }
            in
            let res, _, _, _ = capture ~config p in
            ( Ucode.Size.program_cost res.Hlo.Driver.program,
              Ucode.Size.program_size res.Hlo.Driver.program,
              res.Hlo.Driver.report.Hlo.Report.inlines,
              res.Hlo.Driver.report.Hlo.Report.cost_before )
          in
          let wc, _ws, wi, _ = final Policy.Whole in
          let rc, _rs, ri, before = final Policy.Region in
          let label fmt =
            Printf.ksprintf
              (fun s -> Printf.sprintf "%s @ %g%%: %s" name budget s)
              fmt
          in
          let ceiling = before *. (1.0 +. (budget /. 100.0)) in
          check_bool
            (label "region cost %.0f within whole's ceiling %.0f" rc ceiling)
            true
            (rc <= ceiling +. 1e-6);
          if rc > wc +. 1e-6 then
            check_bool
              (label "extra cost (%.0f > %.0f) must buy extra inlines (%d vs %d)"
                 rc wc ri wi)
              true (ri > wi))
        (Lazy.force corpus))
    [ 100.0; 10.0; 2.0 ]

(* ------------------------------------------------------------------ *)
(* The per-mode journal reasons.                                       *)

let journal_reasons decisions =
  List.filter_map
    (fun (d : E.decision) ->
      match d.E.d_verdict with
      | E.Rejected r when d.E.d_kind = E.Inline -> Some r
      | _ -> None)
    decisions

let run_with_journal ~config p =
  let profile = (Interp.train p).Interp.profile in
  let c = Telemetry.Collector.create () in
  Telemetry.Collector.install c;
  Fun.protect ~finally:Telemetry.Collector.uninstall @@ fun () ->
  let res = Hlo.Driver.run ~config ~profile p in
  (res, Telemetry.Collector.decisions c)

let region_warm =
  lazy (List.assoc "region_warm" (Lazy.force corpus))

let test_split_journal_reasons () =
  let p = Lazy.force region_warm in
  (* Starved region mode: the whole body of the warm routine is
     unaffordable, so it is split — journaled as a rejection of the
     whole-body candidate with the new reason — and cold residue
     routines appear in the report. *)
  List.iter
    (fun mode ->
      let config =
        { (with_mode base_config mode) with
          Hlo.Config.budget_percent = 2.0; region_cold_fraction = 0.6 }
      in
      let res, decisions = run_with_journal ~config p in
      let reasons = journal_reasons decisions in
      let mode_name = Policy.inline_mode_name mode in
      check_bool (mode_name ^ ": journals outlined_then_inlined") true
        (List.mem "outlined_then_inlined" reasons);
      check_bool (mode_name ^ ": report counts residues") true
        (res.Hlo.Driver.report.Hlo.Report.residue_outlined > 0))
    [ Policy.Region; Policy.Demand ];
  (* At 2% the residue itself is still unaffordable: the split happens
     (it is free — quadratically profitable), and the residue's failing
     candidate is journaled with the residue-specific reason instead of
     the generic "budget". *)
  List.iter
    (fun mode ->
      let config =
        { (with_mode base_config mode) with
          Hlo.Config.budget_percent = 2.0; region_cold_fraction = 0.6 }
      in
      let _, decisions = run_with_journal ~config p in
      check_bool
        (Policy.inline_mode_name mode ^ ": journals residue_over_budget")
        true
        (List.mem "residue_over_budget" (journal_reasons decisions)))
    [ Policy.Region; Policy.Demand ];
  (* At a generous budget the split pays off: region inlines the hot
     residue whole mode could never afford whole-body. *)
  let inlines mode =
    let config =
      { (with_mode base_config mode) with
        Hlo.Config.budget_percent = 100.0; region_cold_fraction = 0.6 }
    in
    let res, _ = run_with_journal ~config p in
    res.Hlo.Driver.report.Hlo.Report.inlines
  in
  check_bool "region buys an inline whole cannot afford" true
    (inlines Policy.Region > inlines Policy.Whole);
  (* Whole mode never uses the new reasons, starved or not. *)
  let config =
    { base_config with Hlo.Config.budget_percent = 2.0 }
  in
  let _, decisions = run_with_journal ~config p in
  List.iter
    (fun r ->
      check_bool ("whole mode reason " ^ r) false
        (r = "outlined_then_inlined" || r = "residue_over_budget"))
    (journal_reasons decisions)

(* ------------------------------------------------------------------ *)
(* The chaos bug is oracle-visible and mode-tagged.                    *)

(* The full hunt -> reduce -> disarm cycle for [Region_lost_cold_path]
   runs with the other seeded bugs in test_oracle.ml; here we pin the
   two mode-specific properties: a region-mode check catches it on the
   corpus program built for it, and the failure lands in a bucket
   tagged with the mode (region-mode bugs are triaged apart from
   whole-mode ones). *)
let test_chaos_caught_and_tagged () =
  let sources =
    Oracle.Fuzz.parse_combined
      (In_channel.with_open_text
         (Filename.concat (Lazy.force corpus_dir) "region_warm.mc")
         In_channel.input_all)
  in
  let case =
    { Oracle.Fuzz.c_label = "chaos:region_warm";
      c_sources = sources;
      c_check = check_with Policy.Region 2.0 0.6 }
  in
  Hlo.Chaos.with_bug Hlo.Chaos.Region_lost_cold_path (fun () ->
      match Oracle.Fuzz.run_case ~interp_config case with
      | Oracle.Fuzz.Passed -> Alcotest.fail "lost cold path went unnoticed"
      | Oracle.Fuzz.Skipped why -> Alcotest.failf "case skipped: %s" why
      | Oracle.Fuzz.Failed f ->
        (match f.Oracle.Fuzz.f_kind with
        | Oracle.Fuzz.Mismatch _ -> ()
        | Oracle.Fuzz.Crash { exn_class; detail } ->
          Alcotest.failf "expected a semantic mismatch, got crash %s: %s"
            exn_class detail);
        check_string "bucket carries the mode tag"
          (Oracle.Fuzz.bucket_of_kind ~mode:Policy.Region f.Oracle.Fuzz.f_kind)
          f.Oracle.Fuzz.f_bucket;
        check_bool "tagged bucket differs from the whole-mode bucket" false
          (String.equal f.Oracle.Fuzz.f_bucket
             (Oracle.Fuzz.bucket_of_kind f.Oracle.Fuzz.f_kind)));
  (* Disarmed, the same case passes: the failure was the bug's. *)
  match Oracle.Fuzz.run_case ~interp_config case with
  | Oracle.Fuzz.Passed -> ()
  | Oracle.Fuzz.Skipped why -> Alcotest.failf "disarmed case skipped: %s" why
  | Oracle.Fuzz.Failed f ->
    Alcotest.failf "disarmed case still fails (bucket %s)"
      f.Oracle.Fuzz.f_bucket

(* ------------------------------------------------------------------ *)
(* Mode plumbing: flags and policy codec round trips.                  *)

let test_mode_plumbing () =
  (* Config <-> flags. *)
  let config =
    { Hlo.Config.default with
      Hlo.Config.inline_mode = Policy.Demand; region_cold_fraction = 0.25 }
  in
  Alcotest.(check (list string))
    "to_flags pins mode and fraction"
    [ "--inline-mode"; "demand"; "--region-cold-fraction"; "0.25" ]
    (Hlo.Config.to_flags config);
  check_int "whole mode adds no flags" 0
    (List.length (Hlo.Config.to_flags Hlo.Config.default));
  (* Config <-> policy. *)
  let p = Hlo.Config.to_policy config in
  let config' = Hlo.Config.of_policy p in
  check_bool "policy round trip keeps mode" true
    (config'.Hlo.Config.inline_mode = Policy.Demand);
  check_bool "policy round trip keeps fraction" true
    (config'.Hlo.Config.region_cold_fraction = 0.25);
  (* Mode names. *)
  List.iter
    (fun m ->
      match Policy.inline_mode_of_name (Policy.inline_mode_name m) with
      | Ok m' -> check_bool "name round trip" true (m = m')
      | Error e -> Alcotest.fail e)
    [ Policy.Whole; Policy.Region; Policy.Demand ];
  check_bool "unknown mode rejected" true
    (match Policy.inline_mode_of_name "inside-out" with
    | Error _ -> true
    | Ok _ -> false)

let () =
  let to_alcotest = QCheck_alcotest.to_alcotest in
  Alcotest.run "inline_modes"
    [ ( "whole-identity",
        [ Alcotest.test_case "new knobs inert in whole mode" `Quick
            test_whole_mode_inert ] );
      ( "equivalence",
        [ to_alcotest prop_modes_preserve_wild;
          to_alcotest prop_modes_preserve_skewed;
          Alcotest.test_case "modes agree on corpus" `Quick
            test_modes_agree_on_corpus ] );
      ( "size",
        [ Alcotest.test_case "region size discipline" `Quick
            test_region_size_discipline ] );
      ( "journal",
        [ Alcotest.test_case "split reasons" `Quick
            test_split_journal_reasons ] );
      ( "chaos",
        [ Alcotest.test_case "lost cold path caught and mode-tagged" `Quick
            test_chaos_caught_and_tagged ] );
      ( "plumbing",
        [ Alcotest.test_case "flags and policy round trips" `Quick
            test_mode_plumbing ] ) ]
